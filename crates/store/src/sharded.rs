//! Range-partitioned sharding over any batch-parallel set backend, with
//! skew-triggered rebalance and statistics-driven shard-count autotuning.
//!
//! # Shard routing
//!
//! A [`ShardedSet<S, N>`] owns a vector of backends and one fewer
//! ascending *splitters*. Key `k` lives in shard `i` iff
//! `splitters[i − 1] ≤ k < splitters[i]` (with implicit `−∞`/`+∞`
//! sentinels), i.e. `shard_of(k)` is the number of splitters ≤ `k`.
//! Because shards partition the key space in order, every cross-shard
//! operation stitches shard results in shard index order and gets key
//! order for free: `to_vec` concatenates, `scan_from` resumes in the next
//! shard, `range_sum` adds per-shard sums, `par_chunks` hands out each
//! shard's chunks unchanged.
//!
//! # Batch splitting
//!
//! The `*_batch_sorted` methods binary-search the sorted batch once per
//! splitter ([`slice::partition_point`]), yielding disjoint sub-batch
//! ranges, then apply them to their shards **in parallel** via the
//! workspace pool (`par_iter_mut` over the shard vector). Sub-batch `i`
//! only ever touches shard `i`, so the shards' `&mut` batch updates run
//! concurrently without any locking, and the per-shard counts are summed
//! in shard index order — results are bit-identical at any thread count.
//! Mixed op batches ([`BatchSet::apply_batch_sorted`]) follow the same
//! route: **one** split of the op run at the splitters, each shard
//! applying its interleaved inserts and removes in its backend's single
//! mixed pass — where the former remove-then-insert split walked every
//! shard twice.
//!
//! # Splitter learning, rebalance, and shard-count autotuning
//!
//! A freshly built set learns its splitters from the data: splitter `i` is
//! the `(i + 1)/n` quantile of the sorted input. An empty set starts from
//! evenly spaced cut points over the `u64` domain. Skewed traffic can
//! outgrow either choice, so after every batch update the set checks the
//! observed skew: once it holds at least [`REBALANCE_MIN_PER_SHARD`]
//! elements per shard on average, and the fullest shard exceeds
//! [`SKEW_FACTOR`]× the mean, the set re-learns quantile splitters from
//! its own (sorted) contents and redistributes — an `O(n)` rebuild, the
//! same cost class as the backend PMA's own resize, and deterministic
//! because it depends only on the stored contents.
//!
//! The same pass also *autotunes the shard count*. Every batch update
//! feeds [`RebalanceStats`] (per-shard batch-op counts since the last
//! reshard, rebalance triggers, post-rebalance imbalance), and the
//! rebalance check picks the next shard count from those statistics by
//! doubling or halving between [`ShardTuning::min_shards`] and
//! [`ShardTuning::max_shards`]:
//!
//! * **grow** (double) when the mean shard occupancy exceeds twice
//!   [`ShardTuning::target_per_shard`], or when one shard absorbed more
//!   than three quarters of the batch traffic in the current counting
//!   window (splitting the hot range spreads future batch fan-out);
//! * **shrink** (halve) when the mean occupancy falls below half the
//!   target, so a drained set does not pay cross-shard stitching for
//!   near-empty shards.
//!
//! The decision depends only on the stored contents and the (schedule-
//! independent) batch-op counters, so resharding is as deterministic as
//! the rebalance itself and the wrapper keeps passing the conformance,
//! equivalence, and determinism suites at any thread budget.
//!
//! By default the shard count is **pinned** to the const parameter `N`
//! (`min_shards == max_shards == N` — exactly the pre-autotuning
//! behaviour). Opt in either at the type level via the trailing
//! `MIN`/`MAX` const parameters (`ShardedSet<Cpma, 4, 1, 64>`), which
//! keeps the trait constructors (`new_set`/`build_sorted`) usable by the
//! generic suites, or at runtime via [`ShardedSet::set_tuning`].

use cpma_api::{
    range_to_inclusive, BatchOp, BatchOutcome, BatchSet, ConfigError, OrderedSet, ParallelChunks,
    Persist, PersistError, RangeSet, SetKey,
};
use cpma_obs::{Counter, Gauge, Histogram, Unit};
use cpma_persist::snapshot::{ByteReader, ByteSink, SnapshotEnvelope};
use rayon::prelude::*;
use std::ops::RangeBounds;
use std::path::Path;

/// Average elements per shard below which skew rebalance is never
/// attempted (tiny sets gain nothing from redistribution).
pub const REBALANCE_MIN_PER_SHARD: usize = 256;

/// Skew rebalance triggers when the fullest shard holds more than this
/// many times the mean shard load.
pub const SKEW_FACTOR: usize = 2;

/// Default [`ShardTuning::target_per_shard`]: the mean shard occupancy
/// the autotuner steers toward (grow above 2×, shrink below ½×).
pub const DEFAULT_TARGET_PER_SHARD: usize = 1024;

/// Shard-count bounds and sizing target for [`ShardedSet`]'s autotuner.
///
/// `min_shards == max_shards` pins the shard count (autotuning off) —
/// that is the default, with both bounds equal to the type's `N`.
///
/// # Examples
///
/// ```
/// use cpma_store::ShardTuning;
///
/// let t = ShardTuning::auto(1, 64);
/// assert!(t.check().is_ok());
/// assert!(ShardTuning::auto(8, 4).check().is_err()); // min > max
/// assert_eq!(ShardTuning::fixed(4).max_shards, 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardTuning {
    /// Lower bound for the autotuned shard count (inclusive, ≥ 1).
    pub min_shards: usize,
    /// Upper bound for the autotuned shard count (inclusive).
    pub max_shards: usize,
    /// Mean elements per shard the autotuner steers toward: grow when the
    /// mean exceeds `2 × target_per_shard`, shrink when it falls below
    /// `target_per_shard / 2`. The factor-four hysteresis band keeps a
    /// doubling from immediately re-triggering a halving.
    pub target_per_shard: usize,
}

impl ShardTuning {
    /// Pin the shard count to exactly `n` (autotuning off).
    pub fn fixed(n: usize) -> Self {
        Self {
            min_shards: n,
            max_shards: n,
            target_per_shard: DEFAULT_TARGET_PER_SHARD,
        }
    }

    /// Autotune between `min` and `max` shards with the default
    /// occupancy target.
    pub fn auto(min: usize, max: usize) -> Self {
        Self {
            min_shards: min,
            max_shards: max,
            target_per_shard: DEFAULT_TARGET_PER_SHARD,
        }
    }

    /// Check parameter validity ([`ShardedSet::set_tuning`] returns this;
    /// the trait constructors assert it).
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.min_shards < 1 {
            return Err(ConfigError::new("min_shards", "must be at least 1"));
        }
        if self.max_shards < self.min_shards {
            return Err(ConfigError::new("max_shards", "must be ≥ min_shards"));
        }
        if self.target_per_shard < 1 {
            return Err(ConfigError::new("target_per_shard", "must be at least 1"));
        }
        Ok(())
    }
}

/// Always-on rebalance and autotuning statistics for a [`ShardedSet`].
///
/// Mirrors `PmaStats`: a handful of integer adds per *batch*, kept in the
/// structure itself, so the counters are cheap, deterministic at any
/// thread count, and never need a feature flag. The per-shard traffic
/// window ([`RebalanceStats::shard_batch_ops`]) resets whenever the
/// splitters change (skew rebalance or reshard), since the attribution is
/// only meaningful for one partitioning.
///
/// # Examples
///
/// ```
/// use cpma_api::BatchSet;
/// use cpma_store::ShardedSet;
/// use std::collections::BTreeSet;
///
/// let mut s: ShardedSet<BTreeSet<u64>, 4> = BatchSet::new_set();
/// s.insert_batch_sorted(&[1, 2, 3]);
/// let stats = s.rebalance_stats();
/// assert_eq!(stats.batches, 1);
/// assert_eq!(stats.batch_ops, 3);
/// assert_eq!(stats.shard_batch_ops.iter().sum::<u64>(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RebalanceStats {
    /// Batch applications (one-sided and mixed) seen by this set.
    pub batches: u64,
    /// Total batch elements routed across all batch applications.
    pub batch_ops: u64,
    /// Batch elements routed to each shard since the last splitter
    /// change — the traffic-skew window the autotuner reads.
    pub shard_batch_ops: Vec<u64>,
    /// Skew-triggered splitter re-learns (fullest shard > [`SKEW_FACTOR`]×
    /// mean).
    pub skew_rebalances: u64,
    /// Reshardings that increased the shard count (a doubling, or one
    /// clamp jump up to new [`ShardTuning`] bounds after `set_tuning`).
    pub grows: u64,
    /// Reshardings that decreased the shard count (a halving, or one
    /// clamp jump down to new [`ShardTuning`] bounds after `set_tuning`).
    pub shrinks: u64,
    /// Imbalance after the most recent rebalance/reshard: fullest shard
    /// over mean occupancy, in permille (1000 = perfectly balanced; 0 =
    /// no rebalance has happened yet or the set was empty).
    pub post_rebalance_imbalance_permille: u64,
}

impl RebalanceStats {
    /// One compact human-readable line (the bench drivers print this).
    pub fn summary(&self) -> String {
        format!(
            "batches={} batch_ops={} skew_rebalances={} grows={} shrinks={} \
             post_imbalance={}‰",
            self.batches,
            self.batch_ops,
            self.skew_rebalances,
            self.grows,
            self.shrinks,
            self.post_rebalance_imbalance_permille
        )
    }
}

/// A range-partitioned composition of ordered-set backends that applies
/// sorted batches to its shards in parallel and autotunes its shard count.
///
/// `ShardedSet` implements the same canonical trait hierarchy as its
/// backend `S`, so it drops into every generic driver in the workspace —
/// including [`Combiner`](crate::Combiner), benches, and
/// `fgraph::SetGraph`.
///
/// `N` (default 8) is the **initial** shard count used by `new_set` and
/// `build_sorted`. The trailing `MIN`/`MAX` const parameters bound the
/// autotuner; their default `0` is a sentinel meaning "pinned to `N`", so
/// `ShardedSet<S, N>` behaves exactly like a fixed-count sharding while
/// `ShardedSet<S, N, MIN, MAX>` reshards between `MIN` and `MAX`. The
/// module header in `sharded.rs` documents the resharding policy.
///
/// # Examples
///
/// ```
/// use cpma_api::{BatchSet, OrderedSet, RangeSet};
/// use cpma_store::ShardedSet;
/// use std::collections::BTreeSet;
///
/// // Fixed at 4 shards (the default tuning pins the count to N).
/// let keys: Vec<u64> = (0..1000).collect();
/// let s: ShardedSet<BTreeSet<u64>, 4> = BatchSet::build_sorted(&keys);
/// assert_eq!(s.shard_count(), 4);
/// assert_eq!(s.len(), 1000);
/// assert_eq!(s.range_sum(10..=12), 33);
///
/// // Autotuned between 1 and 64 shards: a large batch grows the count.
/// let mut auto: ShardedSet<BTreeSet<u64>, 4, 1, 64> = BatchSet::new_set();
/// let big: Vec<u64> = (0..20_000).collect();
/// auto.insert_batch_sorted(&big);
/// assert!(auto.shard_count() > 4);
/// assert_eq!(RangeSet::to_vec(&auto), big);
/// ```
/// Registry mirror of [`RebalanceStats`] (names `store.*`): the scalar
/// counters stream into `cpma-obs` cells as they happen, per-shard
/// sub-batch sizes feed a `store.shard_batch_ops` histogram (the traffic
/// skew view), `store.shards` gauges the live shard count, and rebuilds
/// are timed under `store.rebalance.ns`. The autotuner itself keeps
/// reading the plain [`RebalanceStats`] struct — determinism needs the
/// schedule-independent window, not the process-wide aggregate.
///
/// `Clone` registers fresh zeroed cells (gauge included), so snapshot
/// clones published by a combiner neither double-count traffic nor
/// inflate the shard gauge.
struct StoreCounters {
    batches: Counter,
    batch_ops: Counter,
    shard_batch_ops: Histogram,
    skew_rebalances: Counter,
    grows: Counter,
    shrinks: Counter,
    shards: Gauge,
    rebalance_ns: Histogram,
}

impl StoreCounters {
    fn new() -> Self {
        let r = cpma_obs::global();
        Self {
            batches: r.counter("store.batches", Unit::Count),
            batch_ops: r.counter("store.batch_ops", Unit::Count),
            shard_batch_ops: r.histogram("store.shard_batch_ops", Unit::Count),
            skew_rebalances: r.counter("store.rebalances.skew", Unit::Count),
            grows: r.counter("store.rebalances.grow", Unit::Count),
            shrinks: r.counter("store.rebalances.shrink", Unit::Count),
            shards: r.gauge("store.shards"),
            rebalance_ns: r.histogram("store.rebalance.ns", Unit::Nanos),
        }
    }
}

impl Clone for StoreCounters {
    fn clone(&self) -> Self {
        Self::new()
    }
}

#[derive(Clone)]
pub struct ShardedSet<S, const N: usize = 8, const MIN: usize = 0, const MAX: usize = 0> {
    /// The backends, in key order; `shards.len()` is the live shard count.
    shards: Vec<S>,
    /// `splitters[i]` = smallest key (widened to `u64`) routed to shard
    /// `i + 1`; strictly context-dependent but always non-decreasing.
    splitters: Vec<u64>,
    /// Autotuner bounds and occupancy target.
    tuning: ShardTuning,
    /// Always-on rebalance/traffic counters.
    stats: RebalanceStats,
    /// Registry mirror of `stats` (see [`StoreCounters`]).
    counters: StoreCounters,
}

/// Sub-batch boundaries: `bounds[i]..bounds[i + 1]` is shard `i`'s slice
/// of a batch sorted by key — plain keys and mixed op runs split through
/// the same routine via `key_of`.
fn split_bounds_by<T>(splitters: &[u64], batch: &[T], key_of: impl Fn(&T) -> u64) -> Vec<usize> {
    let mut bounds = Vec::with_capacity(splitters.len() + 2);
    bounds.push(0);
    for &s in splitters {
        bounds.push(batch.partition_point(|t| key_of(t) < s));
    }
    bounds.push(batch.len());
    bounds
}

fn split_bounds<K: SetKey>(splitters: &[u64], batch: &[K]) -> Vec<usize> {
    split_bounds_by(splitters, batch, |k| k.to_u64())
}

/// Evenly spaced cut points over the `u64` domain — the no-data prior.
fn default_splitters(n: usize) -> Vec<u64> {
    let stride = (u64::MAX / n as u64).max(1);
    (1..n as u64).map(|i| i.saturating_mul(stride)).collect()
}

/// Quantile splitters learned from a strictly increasing key slice; falls
/// back to the domain prior when there is too little data to pick `n − 1`
/// distinct quantiles.
fn learned_splitters<K: SetKey>(n: usize, elems: &[K]) -> Vec<u64> {
    if elems.len() < n * 2 {
        return default_splitters(n);
    }
    (1..n)
        .map(|i| elems[i * elems.len() / n].to_u64())
        .collect()
}

impl<S, const N: usize, const MIN: usize, const MAX: usize> ShardedSet<S, N, MIN, MAX> {
    /// The tuning resolved from the const parameters: `0` sentinels pin
    /// the count to `N`.
    fn const_tuning() -> ShardTuning {
        ShardTuning {
            min_shards: if MIN == 0 { N } else { MIN },
            max_shards: if MAX == 0 { N } else { MAX },
            target_per_shard: DEFAULT_TARGET_PER_SHARD,
        }
    }

    fn fresh(shards: Vec<S>, splitters: Vec<u64>) -> Self {
        assert!(N >= 1, "ShardedSet needs at least one shard");
        let tuning = Self::const_tuning();
        if let Err(e) = tuning.check() {
            panic!("{e}");
        }
        let stats = RebalanceStats {
            shard_batch_ops: vec![0; shards.len()],
            ..RebalanceStats::default()
        };
        let counters = StoreCounters::new();
        counters.shards.set(shards.len() as i64);
        Self {
            shards,
            splitters,
            tuning,
            stats,
            counters,
        }
    }

    /// Shard index for a key (widened): the number of splitters ≤ it.
    fn shard_of(&self, key: u64) -> usize {
        self.splitters.partition_point(|&s| s <= key)
    }

    /// Current per-shard element counts (diagnostics and tests).
    pub fn shard_lens<K: SetKey>(&self) -> Vec<usize>
    where
        S: OrderedSet<K>,
    {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// The live shard count (starts at `N`; moves within the tuning
    /// bounds when autotuning is enabled).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current splitters (widened to `u64`), ascending.
    pub fn splitters(&self) -> &[u64] {
        &self.splitters
    }

    /// The active autotuner bounds and target.
    pub fn tuning(&self) -> &ShardTuning {
        &self.tuning
    }

    /// Replace the autotuner configuration. Takes effect at the next
    /// batch update's rebalance check (which also clamps an out-of-bounds
    /// current count back into `[min_shards, max_shards]`).
    pub fn set_tuning(&mut self, tuning: ShardTuning) -> Result<(), ConfigError> {
        tuning.check()?;
        self.tuning = tuning;
        Ok(())
    }

    /// The rebalance/traffic statistics accumulated so far.
    pub fn rebalance_stats(&self) -> &RebalanceStats {
        &self.stats
    }

    /// Zero the statistics (the per-shard traffic window keeps its
    /// current length).
    pub fn reset_stats(&mut self) {
        let n = self.shards.len();
        self.stats = RebalanceStats {
            shard_batch_ops: vec![0; n],
            ..RebalanceStats::default()
        };
    }
}

impl<S, const N: usize, const MIN: usize, const MAX: usize> ShardedSet<S, N, MIN, MAX> {
    /// Record one batch application of `len` ops split at `bounds` into
    /// the traffic counters.
    fn record_batch(&mut self, len: usize, bounds: &[usize]) {
        self.stats.batches += 1;
        self.stats.batch_ops += len as u64;
        self.counters.batches.inc();
        self.counters.batch_ops.add(len as u64);
        for (i, ops) in self.stats.shard_batch_ops.iter_mut().enumerate() {
            let routed = (bounds[i + 1] - bounds[i]) as u64;
            *ops += routed;
            self.counters.shard_batch_ops.record(routed);
        }
    }

    /// Split `batch` at the splitters and run `apply` on every non-empty
    /// (shard, sub-batch) pair in parallel; returns the summed counts in
    /// shard index order (schedule-independent).
    fn apply_split<K: SetKey>(
        &mut self,
        batch: &[K],
        apply: impl Fn(&mut S, &[K]) -> usize + Sync + Send,
    ) -> usize
    where
        S: Send,
    {
        let bounds = split_bounds(&self.splitters, batch);
        self.record_batch(batch.len(), &bounds);
        let bounds = &bounds;
        self.shards
            .par_iter_mut()
            .enumerate()
            .map(|(i, shard)| {
                let sub = &batch[bounds[i]..bounds[i + 1]];
                if sub.is_empty() {
                    0
                } else {
                    apply(shard, sub)
                }
            })
            .sum()
    }

    /// The shard count the statistics ask for: double while occupancy or
    /// traffic concentration warrants it, halve while the set is too
    /// empty for its shards, clamp into the tuning bounds. Depends only
    /// on stored contents and deterministic batch-op counters.
    fn desired_shard_count(&self, total: usize) -> usize {
        let cur = self.shards.len();
        let t = &self.tuning;
        if cur < t.min_shards || cur > t.max_shards {
            return cur.clamp(t.min_shards, t.max_shards);
        }
        let overfull = total > cur * 2 * t.target_per_shard;
        // Traffic concentration: one shard absorbed > ¾ of a full op
        // window — splitting its range spreads future batch fan-out.
        let window: u64 = self.stats.shard_batch_ops.iter().sum();
        let hot = self
            .stats
            .shard_batch_ops
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        let window_ready = window >= (cur * REBALANCE_MIN_PER_SHARD) as u64;
        let hot_traffic = cur >= 2 && window_ready && hot * 4 > window * 3;
        if cur < t.max_shards && (overfull || hot_traffic) {
            return (cur * 2).min(t.max_shards);
        }
        // Shrinking is pure cost-saving, so it is lazy: it waits for a
        // full traffic window since the last splitter change and never
        // fires while that window is concentrated on one shard (which
        // would undo a traffic-driven grow and oscillate).
        if cur > t.min_shards
            && window_ready
            && !hot_traffic
            && total * 2 < cur * t.target_per_shard
        {
            return (cur / 2).max(t.min_shards);
        }
        cur
    }

    /// Rebalance pass, run after every batch update: re-learn quantile
    /// splitters (and possibly reshard) if the observed skew, occupancy,
    /// or traffic statistics warrant it. Deterministic at any thread
    /// count — every input is schedule-independent.
    fn maybe_rebalance<K: SetKey>(&mut self)
    where
        S: BatchSet<K> + RangeSet<K> + Send + Sync,
    {
        let cur = self.shards.len();
        let lens: Vec<usize> = self.shards.iter().map(|s| s.len()).collect();
        let total: usize = lens.iter().sum();
        let desired = self.desired_shard_count(total);
        let max = lens.into_iter().max().unwrap_or(0);
        let skewed =
            cur > 1 && total >= cur * REBALANCE_MIN_PER_SHARD && max * cur > total * SKEW_FACTOR;
        if desired == cur && !skewed {
            return;
        }
        if skewed {
            self.stats.skew_rebalances += 1;
            self.counters.skew_rebalances.inc();
        }
        if desired > cur {
            self.stats.grows += 1;
            self.counters.grows.inc();
        } else if desired < cur {
            self.stats.shrinks += 1;
            self.counters.shrinks.inc();
        }
        self.rebuild(desired);
    }

    /// Rebuild into `count` shards with quantile splitters learned from
    /// the stored contents; resets the per-shard traffic window and
    /// records the post-rebalance imbalance.
    fn rebuild<K: SetKey>(&mut self, count: usize)
    where
        S: BatchSet<K> + RangeSet<K> + Send + Sync,
    {
        let mut span = cpma_obs::span_with(&self.counters.rebalance_ns, "store.rebalance");
        let all = RangeSet::to_vec(self);
        span.set_items(all.len() as u64);
        self.splitters = learned_splitters(count, &all);
        let bounds = split_bounds(&self.splitters, &all);
        let bounds = &bounds;
        self.shards = (0..count)
            .into_par_iter()
            .map(|i| S::build_sorted(&all[bounds[i]..bounds[i + 1]]))
            .collect();
        self.stats.shard_batch_ops = vec![0; count];
        self.counters.shards.set(count as i64);
        let max = self.shards.iter().map(|s| s.len()).max().unwrap_or(0);
        self.stats.post_rebalance_imbalance_permille = if all.is_empty() {
            0
        } else {
            (max * count * 1000 / all.len()) as u64
        };
    }
}

impl<K: SetKey, S: OrderedSet<K> + Sync, const N: usize, const MIN: usize, const MAX: usize>
    OrderedSet<K> for ShardedSet<S, N, MIN, MAX>
{
    const NAME: &'static str = "Sharded";

    fn contains(&self, key: K) -> bool {
        self.shards[self.shard_of(key.to_u64())].contains(key)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn min(&self) -> Option<K> {
        self.shards.iter().find_map(|s| s.min())
    }

    fn max(&self) -> Option<K> {
        self.shards.iter().rev().find_map(|s| s.max())
    }

    fn successor(&self, key: K) -> Option<K> {
        let first = self.shard_of(key.to_u64());
        // Every key in a later shard is ≥ its left splitter > `key`, so
        // the first hit in shard order is the global successor.
        self.shards[first]
            .successor(key)
            .or_else(|| self.shards[first + 1..].iter().find_map(|s| s.min()))
    }

    /// Batched membership, shard-parallel: sort the probes once, split the
    /// sorted run at the splitters (exactly like a batch update), hand each
    /// shard its contiguous sub-run through the *backend's* `contains_batch`
    /// (so a PMA shard gets its cache-conscious pass), and scatter the
    /// per-shard answers back to probe positions.
    fn contains_batch(&self, keys: &[K]) -> Vec<bool> {
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_unstable_by_key(|&i| (keys[i].to_u64(), i));
        let sorted: Vec<K> = order.iter().map(|&i| keys[i]).collect();
        let bounds = split_bounds(&self.splitters, &sorted);
        let bounds = &bounds;
        let per_shard: Vec<Vec<bool>> = self
            .shards
            .par_iter()
            .enumerate()
            .map(|(i, shard)| shard.contains_batch(&sorted[bounds[i]..bounds[i + 1]]))
            .collect();
        let mut out = vec![false; keys.len()];
        for (rank, hit) in per_shard.into_iter().flatten().enumerate() {
            out[order[rank]] = hit;
        }
        out
    }

    /// Batched successor with the same sort–split–scatter shape as
    /// [`contains_batch`](OrderedSet::contains_batch). A probe whose own
    /// shard has no successor falls forward to the min of the next
    /// non-empty shard (precomputed once, right to left).
    fn successor_batch(&self, keys: &[K]) -> Vec<Option<K>> {
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_unstable_by_key(|&i| (keys[i].to_u64(), i));
        let sorted: Vec<K> = order.iter().map(|&i| keys[i]).collect();
        let bounds = split_bounds(&self.splitters, &sorted);
        let bounds = &bounds;
        // next_min[i] = smallest element stored in any shard after i.
        let mut next_min: Vec<Option<K>> = vec![None; self.shards.len()];
        let mut running = None;
        for i in (0..self.shards.len()).rev() {
            next_min[i] = running;
            running = self.shards[i].min().or(running);
        }
        let next_min = &next_min;
        let per_shard: Vec<Vec<Option<K>>> = self
            .shards
            .par_iter()
            .enumerate()
            .map(|(i, shard)| {
                let mut sub = shard.successor_batch(&sorted[bounds[i]..bounds[i + 1]]);
                for s in &mut sub {
                    *s = s.or(next_min[i]);
                }
                sub
            })
            .collect();
        let mut out = vec![None; keys.len()];
        for (rank, succ) in per_shard.into_iter().flatten().enumerate() {
            out[order[rank]] = succ;
        }
        out
    }

    fn size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.size_bytes()).sum::<usize>()
            + self.splitters.len() * std::mem::size_of::<u64>()
    }
}

impl<
        K: SetKey,
        S: BatchSet<K> + RangeSet<K> + Send + Sync,
        const N: usize,
        const MIN: usize,
        const MAX: usize,
    > BatchSet<K> for ShardedSet<S, N, MIN, MAX>
{
    fn new_set() -> Self {
        Self::fresh((0..N).map(|_| S::new_set()).collect(), default_splitters(N))
    }

    fn build_sorted(elems: &[K]) -> Self {
        let splitters = learned_splitters(N, elems);
        let bounds = split_bounds(&splitters, elems);
        let bounds = &bounds;
        let shards: Vec<S> = (0..N)
            .into_par_iter()
            .map(|i| S::build_sorted(&elems[bounds[i]..bounds[i + 1]]))
            .collect();
        Self::fresh(shards, splitters)
    }

    fn insert_batch_sorted(&mut self, batch: &[K]) -> usize {
        let added = self.apply_split(batch, |s, b| s.insert_batch_sorted(b));
        self.maybe_rebalance();
        added
    }

    fn remove_batch_sorted(&mut self, batch: &[K]) -> usize {
        let removed = self.apply_split(batch, |s, b| s.remove_batch_sorted(b));
        self.maybe_rebalance();
        removed
    }

    /// Mixed batches split **once** at the splitters and fan out to the
    /// shards in parallel, each shard running its backend's own mixed
    /// pass; outcomes merge in shard index order (schedule-independent).
    fn apply_batch_sorted(&mut self, ops: &[BatchOp<K>]) -> BatchOutcome {
        let bounds = split_bounds_by(&self.splitters, ops, |op| op.key().to_u64());
        self.record_batch(ops.len(), &bounds);
        let bounds = &bounds;
        let outcome = self
            .shards
            .par_iter_mut()
            .enumerate()
            .map(|(i, shard)| {
                let sub = &ops[bounds[i]..bounds[i + 1]];
                if sub.is_empty() {
                    BatchOutcome::default()
                } else {
                    shard.apply_batch_sorted(sub)
                }
            })
            .reduce(BatchOutcome::default, |a, b| a + b);
        self.maybe_rebalance();
        outcome
    }
}

impl<K: SetKey, S: RangeSet<K> + Sync, const N: usize, const MIN: usize, const MAX: usize>
    RangeSet<K> for ShardedSet<S, N, MIN, MAX>
{
    fn scan_from(&self, start: K, f: &mut dyn FnMut(K) -> bool) {
        let first = self.shard_of(start.to_u64());
        let mut live = true;
        for (i, shard) in self.shards.iter().enumerate().skip(first) {
            let from = if i == first { start } else { K::MIN };
            shard.scan_from(from, &mut |k| {
                live = f(k);
                live
            });
            if !live {
                return;
            }
        }
    }

    fn range_sum<R: RangeBounds<K>>(&self, range: R) -> u64 {
        // Stitch per-shard sums in shard (= key) order so each backend's
        // own range_sum fast path runs on its slice of the range.
        let Some((lo, hi)) = range_to_inclusive(&range) else {
            return 0;
        };
        let first = self.shard_of(lo.to_u64());
        let last = self.shard_of(hi.to_u64());
        let mut sum = 0u64;
        for shard in &self.shards[first..=last] {
            sum = sum.wrapping_add(shard.range_sum(lo..=hi));
        }
        sum
    }
}

impl<
        K: SetKey,
        S: ParallelChunks<K> + Sync,
        const N: usize,
        const MIN: usize,
        const MAX: usize,
    > ParallelChunks<K> for ShardedSet<S, N, MIN, MAX>
{
    /// Shards are disjoint and ascending, so each shard's chunks are valid
    /// chunks of the whole set; visit the shards in parallel too.
    fn par_chunks(&self, f: &(dyn Fn(&[K]) + Sync)) {
        self.shards.par_iter().for_each(|s| s.par_chunks(f));
    }
}

/// Manifest codec id inside the [`SnapshotEnvelope`] (`1` and `2` are the
/// PMA leaf codecs; never reuse or renumber).
const MANIFEST_CODEC_ID: u32 = 100;

/// File name of shard `i` inside a [`ShardedSet`] checkpoint directory.
fn shard_file_name(i: usize) -> String {
    format!("shard-{i:05}")
}

fn parse_shard_name(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("shard-")?;
    (digits.len() == 5).then(|| digits.parse().ok())?
}

/// Shard-per-file checkpoints: `save` writes a *directory* holding one
/// backend snapshot per shard (each via `S::save`, so each file is
/// individually checksummed) plus a `MANIFEST` that records the shard
/// count, the [`ShardTuning`], and the splitters — itself a checksummed
/// [`SnapshotEnvelope`], written atomically and written **last**, so a
/// fresh checkpoint directory is all-or-nothing at the manifest: until
/// the manifest lands, `load` fails typed and recovery falls back to an
/// older checkpoint.
///
/// Re-saving over an existing directory reuses it (stale `shard-*` files
/// beyond the current count are deleted) but is not crash-atomic; the
/// durable [`Combiner`](crate::Combiner) always checkpoints into a fresh
/// `checkpoint-<seq>` directory.
///
/// `load` restores the persisted shard count, tuning, and splitters
/// (validated: tuning via [`ShardTuning::check`], splitters ascending and
/// exactly `count − 1`) — the const parameters `N`/`MIN`/`MAX` of the
/// loading type are *not* consulted, so a set saved mid-autotune reloads
/// exactly as it was. Traffic statistics restart at zero.
impl<S: Persist, const N: usize, const MIN: usize, const MAX: usize> Persist
    for ShardedSet<S, N, MIN, MAX>
{
    fn save(&self, path: &Path) -> Result<(), PersistError> {
        std::fs::create_dir_all(path)?;
        for (i, shard) in self.shards.iter().enumerate() {
            shard.save(&path.join(shard_file_name(i)))?;
        }
        // Drop shard files a previous, wider save left behind.
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            if let Some(i) = entry.file_name().to_str().and_then(parse_shard_name) {
                if i >= self.shards.len() {
                    std::fs::remove_file(entry.path())?;
                }
            }
        }
        let mut meta = Vec::new();
        meta.put_u32(self.shards.len() as u32);
        meta.put_u64(self.tuning.min_shards as u64);
        meta.put_u64(self.tuning.max_shards as u64);
        meta.put_u64(self.tuning.target_per_shard as u64);
        let mut payload = Vec::with_capacity(self.splitters.len() * 8);
        for &s in &self.splitters {
            payload.put_u64(s);
        }
        let manifest = SnapshotEnvelope {
            codec_id: MANIFEST_CODEC_ID,
            meta,
            payload,
        };
        manifest.save_file(&path.join("MANIFEST"))
    }

    fn load(path: &Path) -> Result<Self, PersistError> {
        let manifest = SnapshotEnvelope::load_file(&path.join("MANIFEST"))?;
        if manifest.codec_id != MANIFEST_CODEC_ID {
            return Err(PersistError::CodecMismatch {
                expected: MANIFEST_CODEC_ID,
                found: manifest.codec_id,
            });
        }
        let mut r = ByteReader::new(&manifest.meta);
        let count = r.u32("shard count")? as usize;
        let as_usize = |v: u64, what: &'static str| {
            usize::try_from(v).map_err(|_| PersistError::Corrupt(format!("{what} {v} too large")))
        };
        let tuning = ShardTuning {
            min_shards: as_usize(r.u64("min_shards")?, "min_shards")?,
            max_shards: as_usize(r.u64("max_shards")?, "max_shards")?,
            target_per_shard: as_usize(r.u64("target_per_shard")?, "target_per_shard")?,
        };
        r.expect_end("sharded manifest meta")?;
        if count == 0 {
            return Err(PersistError::Corrupt("manifest has zero shards".into()));
        }
        tuning.check().map_err(PersistError::Config)?;
        if manifest.payload.len() != (count - 1) * 8 {
            return Err(PersistError::Corrupt(format!(
                "manifest has {} splitter bytes for {count} shards",
                manifest.payload.len()
            )));
        }
        let mut sp = ByteReader::new(&manifest.payload);
        let mut splitters = Vec::with_capacity(count - 1);
        for _ in 1..count {
            splitters.push(sp.u64("splitter")?);
        }
        if splitters.windows(2).any(|w| w[0] > w[1]) {
            return Err(PersistError::Corrupt("splitters not ascending".into()));
        }
        let mut shards = Vec::with_capacity(count);
        for i in 0..count {
            shards.push(S::load(&path.join(shard_file_name(i)))?);
        }
        let counters = StoreCounters::new();
        counters.shards.set(shards.len() as i64);
        Ok(Self {
            shards,
            splitters,
            tuning,
            stats: RebalanceStats {
                shard_batch_ops: vec![0; count],
                ..RebalanceStats::default()
            },
            counters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    type Sharded4 = ShardedSet<BTreeSet<u64>, 4>;

    fn with_splitters(splitters: Vec<u64>) -> Sharded4 {
        let shards = (0..splitters.len() + 1).map(|_| BTreeSet::new()).collect();
        let mut s = Sharded4::fresh(shards, Vec::new());
        s.splitters = splitters;
        s.stats.shard_batch_ops = vec![0; s.shards.len()];
        s
    }

    #[test]
    fn routing_matches_splitters() {
        let s = with_splitters(vec![10, 20, 30]);
        assert_eq!(s.shard_of(0), 0);
        assert_eq!(s.shard_of(9), 0);
        assert_eq!(s.shard_of(10), 1);
        assert_eq!(s.shard_of(29), 2);
        assert_eq!(s.shard_of(30), 3);
        assert_eq!(s.shard_of(u64::MAX), 3);
    }

    #[test]
    fn split_bounds_partition_the_batch() {
        let batch: Vec<u64> = vec![1, 5, 10, 15, 25, 40];
        let bounds = split_bounds(&[10, 20, 30], &batch);
        assert_eq!(bounds, vec![0, 2, 4, 5, 6]);
        // Sub-batches agree with per-key routing.
        let s = with_splitters(vec![10, 20, 30]);
        for i in 0..4 {
            for &k in &batch[bounds[i]..bounds[i + 1]] {
                assert_eq!(s.shard_of(k), i, "key {k}");
            }
        }
    }

    #[test]
    fn build_learns_quantile_splitters() {
        let elems: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let s: Sharded4 = BatchSet::build_sorted(&elems);
        assert_eq!(s.splitters().len(), 3);
        assert_eq!(RangeSet::to_vec(&s), elems);
        let lens = s.shard_lens();
        assert_eq!(lens.iter().sum::<usize>(), 1000);
        assert!(
            lens.iter().all(|&l| l == 250),
            "quantile build should balance exactly: {lens:?}"
        );
    }

    #[test]
    fn skewed_traffic_triggers_rebalance() {
        // Dense small keys all route to shard 0 under the domain prior.
        let mut s: Sharded4 = BatchSet::new_set();
        let keys: Vec<u64> = (0..(4 * REBALANCE_MIN_PER_SHARD as u64)).collect();
        s.insert_batch_sorted(&keys);
        let lens = s.shard_lens();
        let max = *lens.iter().max().unwrap();
        assert!(
            max <= keys.len() / 3,
            "rebalance should have spread the load: {lens:?}"
        );
        assert_eq!(OrderedSet::len(&s), keys.len());
        assert_eq!(RangeSet::to_vec(&s), keys);
        assert!(s.rebalance_stats().skew_rebalances >= 1);
        assert_eq!(s.rebalance_stats().grows, 0, "default tuning is pinned");
        // The pinned default never reshards: count is still N.
        assert_eq!(s.shard_count(), 4);
    }

    #[test]
    fn single_shard_degenerates_gracefully() {
        let mut s: ShardedSet<BTreeSet<u64>, 1> = BatchSet::new_set();
        assert!(s.splitters().is_empty());
        s.insert_batch_sorted(&[1, 2, 3]);
        assert_eq!(OrderedSet::len(&s), 3);
        assert_eq!(s.remove_batch_sorted(&[2, 9]), 1);
        assert_eq!(RangeSet::to_vec(&s), vec![1, 3]);
    }

    #[test]
    fn autotune_grows_and_shrinks_between_bounds() {
        let mut s: ShardedSet<BTreeSet<u64>, 2, 1, 16> = BatchSet::new_set();
        // Mean occupancy far above 2× target: doubles once per batch
        // until the bound or the hysteresis band is reached.
        let keys: Vec<u64> = (0..40_000).collect();
        s.insert_batch_sorted(&keys);
        let first = s.shard_count();
        assert!(first > 2, "expected growth, still at {first}");
        assert!(first <= 16);
        assert_eq!(RangeSet::to_vec(&s), keys);
        // More batches walk it further up while occupancy stays high.
        s.insert_batch_sorted(&[40_000, 40_001]);
        s.insert_batch_sorted(&[40_002]);
        let grown = s.shard_count();
        assert!(grown >= first && grown <= 16);
        assert!(s.rebalance_stats().grows >= 1);
        // Drain the set: mean occupancy below target/2 halves the count
        // (the big remove batch itself fills the traffic window shrink
        // waits for).
        s.remove_batch_sorted(&(0..40_003).collect::<Vec<u64>>());
        assert!(s.shard_count() < grown, "expected shrink from {grown}");
        assert!(s.rebalance_stats().shrinks >= 1);
        assert!(OrderedSet::is_empty(&s));
    }

    #[test]
    fn set_tuning_clamps_out_of_bounds_count() {
        let mut s: ShardedSet<BTreeSet<u64>, 8> = BatchSet::new_set();
        assert_eq!(s.shard_count(), 8);
        s.set_tuning(ShardTuning::fixed(2)).unwrap();
        s.insert_batch_sorted(&[1, 2, 3]);
        assert_eq!(s.shard_count(), 2, "clamp to the new bounds");
        assert_eq!(RangeSet::to_vec(&s), vec![1, 2, 3]);
        assert!(s.set_tuning(ShardTuning::auto(0, 4)).is_err());
        assert!(s.set_tuning(ShardTuning::auto(4, 2)).is_err());
    }

    #[test]
    fn hot_traffic_window_triggers_growth() {
        let mut s: ShardedSet<BTreeSet<u64>, 4, 4, 8> = BatchSet::new_set();
        // Small set (never over-occupied), but ascending key batches land
        // in one shard's range every round: the traffic window alone must
        // trigger the doubling.
        for round in 0..12u64 {
            let batch: Vec<u64> = (round * 256..(round + 1) * 256).collect();
            s.insert_batch_sorted(&batch);
        }
        assert!(
            s.rebalance_stats().grows >= 1,
            "hot-shard traffic should have grown the count: {}",
            s.rebalance_stats().summary()
        );
        assert_eq!(s.shard_count(), 8, "doubled to the max bound");
        assert_eq!(RangeSet::to_vec(&s), (0..12 * 256).collect::<Vec<u64>>());
    }

    #[test]
    fn mixed_batches_fan_out_across_shards() {
        use cpma_api::normalize_ops;
        let elems: Vec<u64> = (0..2_000).map(|i| i * 4).collect();
        let mut s: Sharded4 = BatchSet::build_sorted(&elems);
        let mut model: BTreeSet<u64> = elems.iter().copied().collect();
        // Ops spanning every shard, interleaving inserts and removes.
        let mut ops: Vec<BatchOp<u64>> = (0..1_000u64)
            .map(|i| {
                if i % 2 == 0 {
                    BatchOp::Remove(i * 8)
                } else {
                    BatchOp::Insert(i * 8 + 1)
                }
            })
            .collect();
        let norm = normalize_ops(&mut ops);
        let mut want = BatchOutcome::default();
        for op in norm {
            match *op {
                BatchOp::Insert(k) => want.added += usize::from(model.insert(k)),
                BatchOp::Remove(k) => want.removed += usize::from(model.remove(&k)),
            }
        }
        let got = s.apply_batch_sorted(norm);
        assert_eq!(got, want);
        assert_eq!(
            RangeSet::to_vec(&s),
            model.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn cross_shard_queries_stitch_in_key_order() {
        let elems: Vec<u64> = (0..400).map(|i| i * 5).collect();
        let s: Sharded4 = BatchSet::build_sorted(&elems);
        // Range spanning all shards.
        assert_eq!(
            s.range_sum(..),
            elems.iter().fold(0u64, |a, &b| a.wrapping_add(b))
        );
        // scan_from across a shard boundary, with early exit.
        let mut got = Vec::new();
        s.scan_from(495, &mut |k| {
            got.push(k);
            got.len() < 4
        });
        assert_eq!(got, vec![495, 500, 505, 510]);
        assert_eq!(OrderedSet::successor(&s, 501), Some(505));
        assert_eq!(OrderedSet::min(&s), Some(0));
        assert_eq!(OrderedSet::max(&s), Some(1995));
    }
}
