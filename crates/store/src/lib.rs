//! # cpma-store — a concurrent front-end that turns live traffic into
//! batch-parallel updates.
//!
//! The paper's core claim is that *batching amortizes update cost*: a
//! batch-parallel insert of k elements into a CPMA beats k point inserts
//! by orders of magnitude (§4, Figure 1). But every structure in this
//! workspace is single-owner — `&mut self` batch methods — so many
//! concurrent clients could not use one at all. This crate closes that gap
//! with two composable layers, following the shape of batch-parallel 2-3
//! trees (explicit batch interfaces fed by an aggregation layer) and
//! PaC-tree-style snapshot readers:
//!
//! * [`ShardedSet<S, N>`] range-partitions the key space into shards
//!   of any [`cpma_api::BatchSet`] + [`cpma_api::RangeSet`] backend,
//!   splits each sorted batch at learned splitters, and applies the
//!   per-shard sub-batches **in parallel** on the workspace pool. Its
//!   rebalance pass is self-tuning: always-on [`RebalanceStats`] track
//!   per-shard traffic and imbalance, and the shard count doubles or
//!   halves between configurable bounds ([`ShardTuning`]) as occupancy
//!   and traffic demand. It implements the full canonical trait
//!   hierarchy itself, so the conformance suite, the equivalence and
//!   determinism tests, and `fgraph::SetGraph` all gate it unchanged.
//! * [`Combiner<S>`] is a flat-combining writer front-end: any thread may
//!   submit `insert`/`remove`/`contains` operations; one submitter is
//!   elected leader per *epoch*, drains the shared publication buffer,
//!   folds the drained operations into one normalized batch, applies it
//!   with the backend's batch-parallel update, and wakes every waiter with
//!   its individual result. The combining window is governed by
//!   [`WindowPolicy`] — static thresholds or the adaptive arrival-rate
//!   tracker — with always-on [`CombinerStats`] recording epoch sizes
//!   and seal reasons. Readers run against a swap-published snapshot
//!   ([`Combiner::snapshot`]) and never block behind writers.
//!
//! Stacked as `Combiner<ShardedSet<Cpma>>`, point operations from many
//! threads become sorted batches, and those batches fan out over shards —
//! live traffic executes exactly the workload regime the paper shows the
//! CPMA wins. The `store_throughput` benchmark binary in `cpma-bench`
//! measures that end to end (including the bursty-arrival Fixed-vs-
//! Adaptive sweep); `docs/TUNING.md` explains every knob.
//!
//! # Durability
//!
//! Both layers persist through `cpma-persist`. [`ShardedSet`] implements
//! [`Persist`] as a shard-per-file checkpoint directory with a
//! checksummed manifest, and [`Combiner::open_durable`] attaches an epoch
//! write-ahead log: each epoch's net batch is appended (checksummed,
//! under a configurable [`FsyncPolicy`]) *before* it is applied, and the
//! log rotates through size-triggered checkpoints. Reopening the same
//! directory after a crash recovers exactly the state of the last
//! acknowledged epoch — newest valid checkpoint plus WAL tail replay,
//! with a torn final record truncated. `docs/ARCHITECTURE.md` has the
//! format and the recovery state machine.

mod combiner;
mod sharded;

pub use combiner::{AdaptiveWindow, Combiner, CombinerConfig, CombinerStats, Op, WindowPolicy};
pub use cpma_api::{Persist, PersistError};
pub use cpma_persist::{FsyncPolicy, RecoveryReport, WalConfig};
pub use sharded::{
    RebalanceStats, ShardTuning, ShardedSet, DEFAULT_TARGET_PER_SHARD, REBALANCE_MIN_PER_SHARD,
    SKEW_FACTOR,
};
