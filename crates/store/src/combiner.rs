//! Flat-combining concurrent writer front-end over a batch-parallel set,
//! with fixed or adaptive combining windows.
//!
//! # Combining epochs
//!
//! Point operations from concurrent threads are collected into *epochs*.
//! A submitting thread appends its operation to the open epoch's
//! publication buffer, then either becomes the **leader** (if the
//! single leader slot — a `Mutex` around the authoritative set — is free)
//! or waits for its epoch's completion. The leader:
//!
//! 1. holds the epoch open for a *combining window* governed by
//!    [`CombinerConfig::policy`] (see below), so concurrent traffic
//!    accumulates into one batch;
//! 2. seals the epoch (a fresh epoch opens for later submitters) and
//!    replays the drained operations *in submission order* against a
//!    presence overlay, recording each operation's individual result —
//!    this is what makes the epoch linearizable: every operation observes
//!    exactly the operations submitted before it;
//! 3. folds the overlay's net effect into **one mixed op batch**
//!    (normalized by [`cpma_api::normalize_ops`]) and applies it with a
//!    single [`BatchSet::apply_batch_sorted`] call — one batch-parallel
//!    update per epoch, and one structure traversal where the former
//!    remove-batch + insert-batch split paid two;
//! 4. publishes a fresh snapshot (every
//!    [`CombinerConfig::snapshot_every`] epochs), then marks the epoch
//!    done and wakes all waiters with their results.
//!
//! Leadership is re-elected per epoch by `try_lock`: whichever waiter
//! finds the leader slot free next drives the next epoch, so the design
//! needs no dedicated combiner thread and quiesces to zero cost when
//! idle. Everything is built on `std` `Mutex`/`Condvar` only.
//!
//! # Window policies
//!
//! How long the leader holds an epoch open decides the batch size — the
//! quantity every batch-parallel backend's throughput hinges on — and is
//! chosen by [`WindowPolicy`]:
//!
//! * [`WindowPolicy::Fixed`] (the default): hold the epoch open until
//!   [`CombinerConfig::window_ops`] operations are pending or
//!   [`CombinerConfig::window_wait`] elapses. With a zero wait this is
//!   *reactive* flat combining — the leader drains whatever is pending
//!   and never waits, so batch size adapts only to contention. A fixed
//!   window must be hand-tuned to the arrival rate: too short and bursts
//!   fragment into many small batches, too long and the leader wastes
//!   the whole wait on sparse traffic.
//! * [`WindowPolicy::Adaptive`]: the leader tracks an EWMA of the
//!   inter-arrival gaps of *publications* (a point op or one whole
//!   `submit_many` burst each count as one arrival) and keeps the
//!   window open *while traffic keeps arriving* — it seals as soon as
//!   the instantaneous gap since the last arrival exceeds
//!   [`AdaptiveWindow::gap_factor`]× the EWMA (never sooner than
//!   [`AdaptiveWindow::idle_grace`]), or when a hard cap fires
//!   ([`AdaptiveWindow::max_window_ops`] /
//!   [`AdaptiveWindow::max_window_wait`]). Bursts combine into one big
//!   batch and the window closes right when the burst ends, with no
//!   hand-tuned rate assumption.
//!
//! Every epoch's size and seal reason feed the always-on
//! [`CombinerStats`] (mirroring `PmaStats`), so a deployment can check
//! *why* its epochs seal — `docs/TUNING.md` walks through reading them.
//!
//! # Snapshot readers
//!
//! [`Combiner::snapshot`] hands out the most recently published snapshot
//! behind an `Arc` — readers never block behind a writing leader, and an
//! acknowledged operation is visible in the next published snapshot
//! (immediately on acknowledgement with `snapshot_every == 1`, the
//! default, because the leader publishes *before* it wakes waiters).
//!
//! # Examples
//!
//! ```
//! use cpma_store::{AdaptiveWindow, Combiner, CombinerConfig, WindowPolicy};
//! use std::collections::BTreeSet;
//!
//! let cfg = CombinerConfig {
//!     policy: WindowPolicy::Adaptive(AdaptiveWindow::default()),
//!     ..CombinerConfig::default()
//! };
//! let store: Combiner<BTreeSet<u64>> = Combiner::with_config(BTreeSet::new(), cfg);
//! assert!(store.insert(7));
//! assert!(store.snapshot().contains(&7));
//! let stats = store.stats();
//! assert_eq!(stats.epochs, 1);
//! assert_eq!(stats.sealed_rate_drop + stats.sealed_ops_cap + stats.sealed_wait_cap, 1);
//! ```

use cpma_api::{
    normalize_batch, normalize_ops, BatchOp, BatchSet, ConfigError, Persist, PersistError,
    RangeSet, SetKey,
};
use cpma_obs::{Counter, Gauge, Histogram, Unit};
use cpma_persist::{recover, RecoveryReport, WalConfig, WalWriter};
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, TryLockError};
use std::time::{Duration, Instant};

/// One point operation submitted to a [`Combiner`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op<K> {
    /// Insert the key; acknowledged `true` iff the key was newly added.
    Insert(K),
    /// Remove the key; acknowledged `true` iff the key was present.
    Remove(K),
    /// Linearized membership test (reads that must observe all earlier
    /// writes; use [`Combiner::snapshot`] for wait-free reads).
    Contains(K),
}

impl<K: Copy> Op<K> {
    fn key(&self) -> K {
        match *self {
            Op::Insert(k) | Op::Remove(k) | Op::Contains(k) => k,
        }
    }
}

/// How a [`Combiner`] leader decides when its combining window closes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WindowPolicy {
    /// Static thresholds: seal at [`CombinerConfig::window_ops`] pending
    /// operations or after [`CombinerConfig::window_wait`] (whichever
    /// comes first). `window_wait == 0` never waits (reactive combining).
    Fixed,
    /// Arrival-rate tracking: grow the epoch while operations keep
    /// arriving, seal on a rate drop or a hard cap. See
    /// [`AdaptiveWindow`] for the knobs.
    Adaptive(AdaptiveWindow),
}

/// Knobs of [`WindowPolicy::Adaptive`].
///
/// The leader keeps an EWMA (weight ¼) of inter-arrival gaps, where one
/// *arrival* is one publication landing in the epoch buffer — a single
/// point op or one whole [`Combiner::submit_many`] burst, so tune
/// `gap_factor` against your publication rate, not the per-op rate
/// inside bursts. The window stays open while the time since the last
/// arrival is below `max(gap_factor × EWMA, idle_grace)`; crossing
/// that line seals the epoch (*rate drop*). `max_window_ops` and
/// `max_window_wait` are hard caps so a saturating stream still seals.
/// The EWMA is warm-started from the previous epoch (halved across
/// epochs that saw no extra arrival), so wave traffic is recognized
/// from the first straggler.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveWindow {
    /// Seal once the instantaneous gap exceeds this multiple of the EWMA
    /// gap (≥ 1).
    pub gap_factor: u32,
    /// Minimum idle allowance, and the allowance before the epoch's
    /// first gap sample exists. This bounds the extra latency adaptive
    /// combining adds to an isolated operation.
    pub idle_grace: Duration,
    /// Hard cap: seal as soon as this many operations are pending.
    pub max_window_ops: usize,
    /// Hard cap: seal once the window has been open this long.
    pub max_window_wait: Duration,
}

impl Default for AdaptiveWindow {
    fn default() -> Self {
        Self {
            gap_factor: 8,
            idle_grace: Duration::from_micros(50),
            max_window_ops: 8192,
            max_window_wait: Duration::from_millis(2),
        }
    }
}

impl AdaptiveWindow {
    fn check(&self) -> Result<(), ConfigError> {
        if self.gap_factor < 1 {
            return Err(ConfigError::new("gap_factor", "must be at least 1"));
        }
        if self.max_window_ops < 1 {
            return Err(ConfigError::new("max_window_ops", "must be at least 1"));
        }
        if self.max_window_wait < self.idle_grace {
            return Err(ConfigError::new(
                "max_window_wait",
                "must be at least idle_grace",
            ));
        }
        Ok(())
    }
}

/// Why a combining window closed (tallied in [`CombinerStats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SealReason {
    /// The op threshold fired: `window_ops` under [`WindowPolicy::Fixed`],
    /// `max_window_ops` under [`WindowPolicy::Adaptive`].
    OpsCap,
    /// The wall-clock cap fired: `window_wait` under Fixed (including
    /// every reactive drain, whose wait is zero), `max_window_wait`
    /// under Adaptive.
    WaitCap,
    /// Adaptive only: the instantaneous inter-arrival gap exceeded the
    /// allowance — the burst ended.
    RateDrop,
}

/// Always-on combining statistics, mirroring `PmaStats`: a handful of
/// integer adds per *epoch*, kept under the leader lock, so they are
/// cheap, coherent, and need no feature flag.
///
/// # Examples
///
/// ```
/// use cpma_store::Combiner;
/// use std::collections::BTreeSet;
///
/// let c: Combiner<BTreeSet<u64>> = Combiner::new(BTreeSet::new());
/// c.insert_many(&[1, 2, 3, 4]);
/// let stats = c.stats();
/// assert_eq!((stats.epochs, stats.ops), (1, 4));
/// // A 4-op epoch lands in the ops-histogram bucket for log2(4) == 2.
/// assert_eq!(stats.ops_per_epoch_log2[2], 1);
/// assert_eq!(stats.summary().contains("epochs=1"), true);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CombinerStats {
    /// Epochs applied (each applied exactly one combined batch).
    pub epochs: u64,
    /// Operations acknowledged across all epochs.
    pub ops: u64,
    /// Histogram of epoch sizes: bucket `i` counts epochs with
    /// `ops_in_epoch.ilog2() == i` (bucket 15 collects everything of
    /// 2^15 ops and larger).
    pub ops_per_epoch_log2: [u64; 16],
    /// Epochs sealed by the op-count threshold (`window_ops` /
    /// `max_window_ops`).
    pub sealed_ops_cap: u64,
    /// Epochs sealed by the wall-clock threshold (`window_wait` /
    /// `max_window_wait`; every reactive drain counts here).
    pub sealed_wait_cap: u64,
    /// Epochs sealed by an arrival-rate drop (adaptive policy only).
    pub sealed_rate_drop: u64,
}

impl CombinerStats {
    /// Mean operations per epoch so far.
    pub fn mean_ops_per_epoch(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.ops as f64 / self.epochs as f64
        }
    }

    /// One compact human-readable line (the bench drivers print this).
    pub fn summary(&self) -> String {
        format!(
            "epochs={} ops={} mean_ops/epoch={:.1} sealed[ops_cap={} wait_cap={} rate_drop={}]",
            self.epochs,
            self.ops,
            self.mean_ops_per_epoch(),
            self.sealed_ops_cap,
            self.sealed_wait_cap,
            self.sealed_rate_drop
        )
    }
}

/// The registry-backed cells behind [`CombinerStats`]: each combiner
/// registers its own under `combiner.*` names, and [`Combiner::stats`]
/// is a point-in-time [`CombinerCounters::view`] over them.
///
/// The epoch-size distribution lives in a full `cpma-obs` histogram
/// (`combiner.ops_per_epoch`); the public `ops_per_epoch_log2` array is
/// reconstructed exactly from its per-octave counts, because obs buckets
/// never span an octave boundary. This replaces the hand-rolled ilog2
/// bucketing that used to live here.
struct CombinerCounters {
    epochs: Counter,
    ops: Counter,
    sealed_ops_cap: Counter,
    sealed_wait_cap: Counter,
    sealed_rate_drop: Counter,
    /// Deterministic epoch-size distribution (unit: ops).
    ops_per_epoch: Histogram,
    /// Timing-derived seal→publish latency (unit: ns); see the span in
    /// `lead`.
    epoch_ns: Histogram,
}

impl CombinerCounters {
    fn new() -> Self {
        let r = cpma_obs::global();
        Self {
            epochs: r.counter("combiner.epochs", Unit::Count),
            ops: r.counter("combiner.ops", Unit::Count),
            sealed_ops_cap: r.counter("combiner.sealed.ops_cap", Unit::Count),
            sealed_wait_cap: r.counter("combiner.sealed.wait_cap", Unit::Count),
            sealed_rate_drop: r.counter("combiner.sealed.rate_drop", Unit::Count),
            ops_per_epoch: r.histogram("combiner.ops_per_epoch", Unit::Count),
            epoch_ns: r.histogram("combiner.epoch.ns", Unit::Nanos),
        }
    }

    fn record_epoch(&self, ops: usize, reason: SealReason) {
        self.epochs.inc();
        self.ops.add(ops as u64);
        self.ops_per_epoch.record(ops as u64);
        match reason {
            SealReason::OpsCap => self.sealed_ops_cap.inc(),
            SealReason::WaitCap => self.sealed_wait_cap.inc(),
            SealReason::RateDrop => self.sealed_rate_drop.inc(),
        }
    }

    fn view(&self) -> CombinerStats {
        CombinerStats {
            epochs: self.epochs.value(),
            ops: self.ops.value(),
            ops_per_epoch_log2: self.ops_per_epoch.snapshot().octave_counts::<16>(),
            sealed_ops_cap: self.sealed_ops_cap.value(),
            sealed_wait_cap: self.sealed_wait_cap.value(),
            sealed_rate_drop: self.sealed_rate_drop.value(),
        }
    }
}

/// Tuning knobs for the combining epochs.
#[derive(Clone, Debug)]
pub struct CombinerConfig {
    /// How the leader decides when to seal an epoch. [`WindowPolicy::Fixed`]
    /// (the default) uses `window_ops`/`window_wait` below;
    /// [`WindowPolicy::Adaptive`] carries its own knobs and ignores them.
    pub policy: WindowPolicy,
    /// Fixed-policy combining-window *target*: while `window_wait` has not
    /// elapsed, the leader holds the epoch open until at least this many
    /// operations are pending. It is a wait threshold, not a cap —
    /// submissions that land before sealing all join the epoch — and it
    /// has no effect when `window_wait` is zero (the leader then never
    /// waits).
    pub window_ops: usize,
    /// Fixed-policy wait bound: how long the leader holds the epoch open
    /// waiting for the window to fill. `Duration::ZERO` (the default) is
    /// *reactive* flat combining: the leader drains whatever is pending
    /// and never waits — batch size then adapts to contention (ops pile
    /// up while the previous epoch applies). A non-zero wait trades
    /// latency for bigger batches on sparse traffic.
    pub window_wait: Duration,
    /// Publish a snapshot every this many epochs. 1 (the default) makes
    /// every acknowledged operation immediately snapshot-visible; larger
    /// values trade snapshot freshness for less cloning on write-heavy
    /// workloads.
    pub snapshot_every: u64,
    /// How long a waiter sleeps before re-checking whether the leader
    /// slot has freed up (bounds leader-handoff latency).
    pub retry_wait: Duration,
}

impl Default for CombinerConfig {
    fn default() -> Self {
        Self {
            policy: WindowPolicy::Fixed,
            window_ops: 64,
            window_wait: Duration::ZERO,
            snapshot_every: 1,
            retry_wait: Duration::from_micros(50),
        }
    }
}

impl CombinerConfig {
    /// The default adaptive configuration: `Adaptive(AdaptiveWindow::default())`
    /// with everything else as in [`CombinerConfig::default`].
    pub fn adaptive() -> Self {
        Self {
            policy: WindowPolicy::Adaptive(AdaptiveWindow::default()),
            ..Self::default()
        }
    }

    /// Check parameter validity ([`Combiner::with_config`] asserts this).
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.window_ops < 1 {
            return Err(ConfigError::new("window_ops", "must be at least 1"));
        }
        if self.snapshot_every < 1 {
            return Err(ConfigError::new("snapshot_every", "must be at least 1"));
        }
        if let WindowPolicy::Adaptive(a) = &self.policy {
            a.check()?;
        }
        Ok(())
    }
}

/// The publication buffer for one epoch, shared between its submitters
/// and the leader that drains it.
struct EpochState<K> {
    ops: Vec<Op<K>>,
    /// Set by the leader when it drains the buffer; submitters that find
    /// their epoch sealed re-route to the freshly opened one.
    sealed: bool,
    /// Set (with `results`) after the batch is applied and published.
    done: bool,
    /// `results[i]` answers `ops[i]`; valid once `done`.
    results: Vec<bool>,
}

struct Epoch<K> {
    state: Mutex<EpochState<K>>,
    /// Waiters (submitters) block here until `done`.
    done_cv: Condvar,
    /// The leader blocks here while its combining window fills.
    fill_cv: Condvar,
}

impl<K> Epoch<K> {
    fn new() -> Self {
        Self {
            state: Mutex::new(EpochState {
                ops: Vec::new(),
                sealed: false,
                done: false,
                results: Vec::new(),
            }),
            done_cv: Condvar::new(),
            fill_cv: Condvar::new(),
        }
    }
}

/// Durability attachment of a [`Combiner`] opened via
/// [`Combiner::open_durable`]: the epoch write-ahead log plus the
/// checkpoint entry point.
///
/// The checkpoint is a plain function pointer captured where the
/// `S: Persist` bound is in scope (`open_durable`), so the epoch path
/// (`lead`) needs no persistence bound of its own.
struct DurableState<S> {
    writer: WalWriter,
    checkpoint: fn(&S, &Path) -> Result<(), PersistError>,
}

/// Leader-exclusive state: the authoritative set, the epoch counter, and
/// the combining statistics.
struct Core<S> {
    set: S,
    epochs_applied: u64,
    /// `Some` iff this combiner is durable: every epoch's net batch is
    /// WAL-appended before it is applied, and rotation checkpoints the
    /// set. The WAL sequence number of an epoch *is* its position in
    /// `epochs_applied` (empty epochs are logged too, so the two never
    /// drift).
    wal: Option<DurableState<S>>,
    stats: CombinerCounters,
    /// Warm-start seed for the next epoch's inter-arrival EWMA (adaptive
    /// policy): the previous epoch's final EWMA, halved whenever an
    /// epoch closes without seeing any arrival beyond its opening
    /// publication, so the allowance decays back toward `idle_grace`
    /// across a sparse stretch instead of sticking at a stale burst
    /// estimate.
    ewma_seed_ns: f64,
}

/// A flat-combining concurrent front-end over any batch-parallel set.
///
/// Share it by reference (or `Arc`) across threads; the module header
/// in `combiner.rs` documents the epoch protocol and window policies.
///
/// # Examples
///
/// ```
/// use cpma_store::{Combiner, Op};
/// use std::collections::BTreeSet;
///
/// let store: Combiner<BTreeSet<u64>> = Combiner::new(BTreeSet::new());
/// std::thread::scope(|scope| {
///     for t in 0..4u64 {
///         let store = &store;
///         scope.spawn(move || {
///             for i in 0..100 {
///                 store.insert(t * 1000 + i);
///             }
///         });
///     }
/// });
/// assert_eq!(store.snapshot().len(), 400);
/// let results = store.submit_many(&[Op::Remove(1), Op::Contains(1)]);
/// assert_eq!(results, vec![true, false]);
/// ```
pub struct Combiner<S, K: SetKey = u64> {
    core: Mutex<Core<S>>,
    current: Mutex<Arc<Epoch<K>>>,
    published: Mutex<Arc<S>>,
    cfg: CombinerConfig,
    /// Open-epoch occupancy (`combiner.queue_depth`): set by every
    /// enqueue, zeroed when the leader seals. Lives outside `Core` so the
    /// submit path never touches the leader lock for it.
    queue_depth: Gauge,
}

impl<S, K> Combiner<S, K>
where
    K: SetKey,
    S: BatchSet<K> + RangeSet<K> + Clone + Sync,
{
    /// Wrap `set` with the default configuration.
    pub fn new(set: S) -> Self {
        Self::with_config(set, CombinerConfig::default())
    }

    /// Wrap `set` with an explicit configuration.
    ///
    /// # Panics
    /// If `cfg` fails [`CombinerConfig::check`] (an already-constructed
    /// invalid config is a programming error).
    pub fn with_config(set: S, cfg: CombinerConfig) -> Self {
        if let Err(e) = cfg.check() {
            panic!("{e}");
        }
        Self {
            published: Mutex::new(Arc::new(set.clone())),
            core: Mutex::new(Core {
                set,
                epochs_applied: 0,
                wal: None,
                stats: CombinerCounters::new(),
                ewma_seed_ns: 0.0,
            }),
            current: Mutex::new(Arc::new(Epoch::new())),
            cfg,
            queue_depth: cpma_obs::global().gauge("combiner.queue_depth"),
        }
    }

    /// Insert `key`; returns whether it was newly added, linearized
    /// against every other submitted operation.
    pub fn insert(&self, key: K) -> bool {
        self.submit(Op::Insert(key))
    }

    /// Remove `key`; returns whether it was present.
    pub fn remove(&self, key: K) -> bool {
        self.submit(Op::Remove(key))
    }

    /// Linearized membership test (goes through the op stream; for
    /// wait-free reads use [`Combiner::snapshot`]).
    pub fn contains(&self, key: K) -> bool {
        self.submit(Op::Contains(key))
    }

    /// The most recently published snapshot. Never blocks behind a
    /// writing leader — only a pointer clone under a short lock.
    pub fn snapshot(&self) -> Arc<S> {
        self.published.lock().unwrap().clone()
    }

    /// Epochs applied so far (each applied exactly one combined batch).
    pub fn epochs_applied(&self) -> u64 {
        self.core.lock().unwrap().epochs_applied
    }

    /// A copy of the combining statistics so far. Taken under the leader
    /// lock, so it may briefly wait for an in-flight epoch to finish.
    pub fn stats(&self) -> CombinerStats {
        self.core.lock().unwrap().stats.view()
    }

    /// Zero the combining statistics (e.g. between measured phases).
    pub fn reset_stats(&self) {
        self.core.lock().unwrap().stats = CombinerCounters::new();
    }

    /// Unwrap the authoritative set (consumes the combiner, so every
    /// acknowledged operation is included).
    pub fn into_inner(self) -> S {
        self.core.into_inner().unwrap().set
    }

    /// Submit one operation and block until its epoch is applied;
    /// returns the operation's individual result.
    pub fn submit(&self, op: Op<K>) -> bool {
        let (epoch, idx) = self.enqueue(std::slice::from_ref(&op));
        self.await_epoch(&epoch, |st| st.results[idx])
    }

    /// Submit a burst of operations as one publication — one enqueue,
    /// one wait — and block until their epoch is applied. Returns the
    /// per-operation results in submission order. This is the ingest
    /// path: a burst keeps the combined batch large even when writers
    /// are synchronous, which is where batch-parallel updates pull ahead
    /// of per-operation locking.
    pub fn submit_many(&self, ops: &[Op<K>]) -> Vec<bool> {
        if ops.is_empty() {
            return Vec::new();
        }
        let (epoch, start) = self.enqueue(ops);
        let end = start + ops.len();
        self.await_epoch(&epoch, |st| st.results[start..end].to_vec())
    }

    /// Burst-insert convenience: returns how many keys were newly added.
    pub fn insert_many(&self, keys: &[K]) -> usize {
        let ops: Vec<Op<K>> = keys.iter().map(|&k| Op::Insert(k)).collect();
        self.submit_many(&ops).into_iter().filter(|&b| b).count()
    }

    /// Append `ops` to the open epoch (re-routing if a leader seals it
    /// between lookup and push — the new epoch is installed while
    /// `current` is held, so the retry loop is bounded). Returns the
    /// epoch and the index of the first appended op.
    fn enqueue(&self, ops: &[Op<K>]) -> (Arc<Epoch<K>>, usize) {
        let (epoch, idx) = loop {
            let cur = self.current.lock().unwrap().clone();
            let mut st = cur.state.lock().unwrap();
            if !st.sealed {
                let idx = st.ops.len();
                st.ops.extend_from_slice(ops);
                self.queue_depth.set(st.ops.len() as i64);
                drop(st);
                break (cur, idx);
            }
            drop(st);
            std::thread::yield_now();
        };
        // A leader may be holding its combining window open for us.
        epoch.fill_cv.notify_one();
        (epoch, idx)
    }

    /// Wait until `epoch` completes (leading it ourselves if the leader
    /// slot frees first), then return `extract` of its final state.
    fn await_epoch<R>(&self, epoch: &Arc<Epoch<K>>, extract: impl Fn(&EpochState<K>) -> R) -> R {
        loop {
            // Try to take the leader slot. `try_lock` never blocks, so a
            // running leader just sends us to the wait below.
            match self.core.try_lock() {
                Ok(core) => {
                    // Our epoch may have been completed between enqueue
                    // and lock acquisition.
                    {
                        let st = epoch.state.lock().unwrap();
                        if st.done {
                            return extract(&st);
                        }
                    }
                    // Not done and the leader slot is ours: our epoch is
                    // unsealed (sealed epochs complete before the leader
                    // slot frees), i.e. it is the current epoch — lead it.
                    self.lead(core);
                    let st = epoch.state.lock().unwrap();
                    debug_assert!(st.done, "leader must complete its own epoch");
                    return extract(&st);
                }
                Err(TryLockError::WouldBlock) => {}
                Err(TryLockError::Poisoned(e)) => panic!("combiner poisoned: {e}"),
            }
            let st = epoch.state.lock().unwrap();
            if st.done {
                return extract(&st);
            }
            // Timed wait: on `done` notification we return; on timeout we
            // loop to contend for the (possibly freed) leader slot.
            let (st, _) = epoch.done_cv.wait_timeout(st, self.cfg.retry_wait).unwrap();
            if st.done {
                return extract(&st);
            }
        }
    }

    /// Fixed policy: hold the window open until `window_ops` pending ops
    /// or `window_wait` elapsed.
    fn window_fixed<'a>(
        &self,
        epoch: &'a Epoch<K>,
        mut st: std::sync::MutexGuard<'a, EpochState<K>>,
    ) -> (std::sync::MutexGuard<'a, EpochState<K>>, SealReason) {
        let deadline = Instant::now() + self.cfg.window_wait;
        while st.ops.len() < self.cfg.window_ops {
            let now = Instant::now();
            if now >= deadline {
                return (st, SealReason::WaitCap);
            }
            let (g, _) = epoch.fill_cv.wait_timeout(st, deadline - now).unwrap();
            st = g;
        }
        (st, SealReason::OpsCap)
    }

    /// Adaptive policy: track an EWMA of publication inter-arrival
    /// gaps; keep the window open while the time since the last arrival
    /// stays below `max(gap_factor × EWMA, idle_grace)`, seal on a rate
    /// drop or on the `max_window_ops`/`max_window_wait` hard caps.
    ///
    /// The leader *polls* (release the buffer lock, yield, re-check)
    /// instead of sleeping on the fill condvar: the idle allowances at
    /// stake are tens of microseconds, well below the OS timer slack a
    /// condvar timeout pays, and a spinning leader is the classic
    /// flat-combining shape — the window is only open while an epoch is
    /// actively being built, and it is bounded by `max_window_wait`.
    fn window_adaptive<'a>(
        &self,
        epoch: &'a Epoch<K>,
        adaptive: &AdaptiveWindow,
        mut st: std::sync::MutexGuard<'a, EpochState<K>>,
        ewma_seed_ns: f64,
    ) -> (std::sync::MutexGuard<'a, EpochState<K>>, SealReason, f64) {
        let start = Instant::now();
        let hard_deadline = start + adaptive.max_window_wait;
        let mut last_arrival = start;
        let mut seen = st.ops.len();
        // EWMA of inter-arrival gaps, in nanoseconds (weight ¼). An
        // *arrival* is a publication landing in the buffer — one point op
        // or one whole `submit_many` burst — because what the seal
        // decision needs is the spacing of traffic events, not of the
        // individual ops inside a burst. The EWMA is warm-started from
        // the previous epoch so the first straggler of a wave is not
        // judged by the bare `idle_grace`.
        let mut ewma_gap_ns: f64 = ewma_seed_ns;
        let mut have_sample = ewma_seed_ns > 0.0;
        let mut sampled_this_epoch = false;
        loop {
            let carry = if sampled_this_epoch {
                ewma_gap_ns
            } else {
                // Silent epoch: decay the inherited estimate so a sparse
                // stretch converges back to the idle_grace floor.
                ewma_gap_ns * 0.5
            };
            if st.ops.len() >= adaptive.max_window_ops {
                return (st, SealReason::OpsCap, carry);
            }
            let now = Instant::now();
            if now >= hard_deadline {
                return (st, SealReason::WaitCap, carry);
            }
            let n = st.ops.len();
            if n > seen {
                // New arrivals since the last look: fold the gap into
                // the EWMA and restart the idle clock.
                let gap_ns = now.duration_since(last_arrival).as_nanos() as f64;
                ewma_gap_ns = if have_sample {
                    ewma_gap_ns + (gap_ns - ewma_gap_ns) * 0.25
                } else {
                    gap_ns
                };
                have_sample = true;
                sampled_this_epoch = true;
                last_arrival = now;
                seen = n;
                continue;
            }
            let allowance_ns = if have_sample {
                (ewma_gap_ns * f64::from(adaptive.gap_factor))
                    .max(adaptive.idle_grace.as_nanos() as f64)
            } else {
                adaptive.idle_grace.as_nanos() as f64
            };
            if now.duration_since(last_arrival).as_nanos() as f64 >= allowance_ns {
                return (st, SealReason::RateDrop, carry);
            }
            // Release the publication buffer so submitters can land,
            // then look again.
            drop(st);
            std::thread::yield_now();
            st = epoch.state.lock().unwrap();
        }
    }

    /// Drive one epoch: window, seal, replay, apply, publish, wake, then
    /// release the leader slot and hand leadership to a waiter of the
    /// next epoch if one is already pending.
    fn lead(&self, mut guard: std::sync::MutexGuard<'_, Core<S>>) {
        let core = &mut *guard;
        let epoch = self.current.lock().unwrap().clone();

        // Combining window: hold the epoch open so concurrent submitters
        // can pile on, for as long as the configured policy says.
        let (ops, seal_reason) = {
            let st = epoch.state.lock().unwrap();
            let (mut st, reason) = match &self.cfg.policy {
                WindowPolicy::Fixed => self.window_fixed(&epoch, st),
                WindowPolicy::Adaptive(a) => {
                    let (st, reason, carry) =
                        self.window_adaptive(&epoch, a, st, core.ewma_seed_ns);
                    core.ewma_seed_ns = carry;
                    (st, reason)
                }
            };
            st.sealed = true;
            (std::mem::take(&mut st.ops), reason)
        };
        // Open a fresh epoch for subsequent submitters.
        *self.current.lock().unwrap() = Arc::new(Epoch::new());
        self.queue_depth.set(0);

        // Timing span over the epoch's seal-to-publish work (replay,
        // WAL append, batch apply, checkpoint, publication).
        let mut epoch_span = cpma_obs::span_with(&core.stats.epoch_ns, "combiner.epoch");
        epoch_span.set_items(ops.len() as u64);

        // Prefetch the base presence of every distinct key in one batched
        // lookup — the replay's dominant cost on large backends. `uniq` is
        // already sorted and deduplicated, exactly the shape the backend's
        // `contains_batch` fast path wants (a sharded backend further fans
        // the probe run out shard-parallel).
        let mut uniq: Vec<K> = ops.iter().map(|op| op.key()).collect();
        let uniq = normalize_batch(&mut uniq);
        let presence: Vec<bool> = core.set.contains_batch(uniq);
        // Replay in submission order against the presence overlay: each
        // operation observes the set as of all operations before it.
        let mut overlay: HashMap<u64, (bool, bool)> = uniq
            .iter()
            .zip(presence)
            .map(|(&k, p)| (k.to_u64(), (p, p))) // key -> (before, now)
            .collect();
        let mut results = Vec::with_capacity(ops.len());
        for op in &ops {
            let entry = overlay
                .get_mut(&op.key().to_u64())
                .expect("every op key was prefetched");
            let result = match op {
                Op::Insert(_) => {
                    let was = entry.1;
                    entry.1 = true;
                    !was
                }
                Op::Remove(_) => {
                    let was = entry.1;
                    entry.1 = false;
                    was
                }
                Op::Contains(_) => entry.1,
            };
            results.push(result);
        }

        // Net effect of the epoch as ONE mixed batch: each changed key
        // becomes its net op, and the backend applies inserts and removes
        // in a single batch-parallel pass. Keys are unique by
        // construction (one overlay entry each); normalize_ops supplies
        // the key ordering the normal form requires.
        let mut net: Vec<BatchOp<K>> = overlay
            .iter()
            .filter_map(|(&key, &(before, now))| match (before, now) {
                (false, true) => Some(BatchOp::Insert(K::from_u64(key))),
                (true, false) => Some(BatchOp::Remove(K::from_u64(key))),
                _ => None,
            })
            .collect();
        let net = normalize_ops(&mut net);
        // Durability: the epoch's net batch reaches the WAL *before* the
        // set applies it — a crash after the append replays the epoch, a
        // crash before it loses only unacknowledged operations. Empty
        // nets are logged too (a pure-`Contains` epoch still advances
        // the sequence), so WAL seq stays equal to `epochs_applied`.
        // WAL I/O failure is fail-stop: acknowledging an operation whose
        // log write failed would break the durability contract.
        if let Some(durable) = core.wal.as_mut() {
            let seq = core.epochs_applied + 1;
            let widened: Vec<BatchOp<u64>> = net
                .iter()
                .map(|op| match *op {
                    BatchOp::Insert(k) => BatchOp::Insert(k.to_u64()),
                    BatchOp::Remove(k) => BatchOp::Remove(k.to_u64()),
                })
                .collect();
            if let Err(e) = durable.writer.append(seq, &widened) {
                panic!("WAL append for epoch {seq} failed: {e}");
            }
        }
        if !net.is_empty() {
            core.set.apply_batch_sorted(net);
        }
        core.epochs_applied += 1;
        core.stats.record_epoch(ops.len(), seal_reason);
        // Size-triggered checkpoint + WAL rotation, after the apply so
        // the checkpoint image contains everything up to `epochs_applied`.
        if let Some(durable) = core.wal.as_mut() {
            if durable.writer.should_rotate() {
                let seq = core.epochs_applied;
                let path = durable.writer.checkpoint_path(seq);
                if let Err(e) = (durable.checkpoint)(&core.set, &path) {
                    panic!("checkpoint at epoch {seq} failed: {e}");
                }
                if let Err(e) = durable.writer.rotate(seq) {
                    panic!("WAL rotation at epoch {seq} failed: {e}");
                }
            }
        }

        // Publish before waking: an acknowledged op is snapshot-visible.
        if core.epochs_applied.is_multiple_of(self.cfg.snapshot_every) {
            let snap = Arc::new(core.set.clone());
            *self.published.lock().unwrap() = snap;
        }
        drop(epoch_span);

        let mut st = epoch.state.lock().unwrap();
        st.results = results;
        st.done = true;
        drop(st);
        epoch.done_cv.notify_all();

        // Leadership handoff: if the next epoch already has submitters,
        // wake one *after* releasing the leader slot so it can take over
        // immediately instead of sleeping out its retry timeout.
        let next = self.current.lock().unwrap().clone();
        let pending = !next.state.lock().unwrap().ops.is_empty();
        drop(guard);
        if pending {
            next.done_cv.notify_one();
        }
    }
}

impl<S, K> Combiner<S, K>
where
    K: SetKey,
    S: BatchSet<K> + RangeSet<K> + Clone + Sync + Persist,
{
    /// Open a **durable** combiner backed by the WAL directory in `wal`:
    /// recover the newest valid checkpoint, replay the WAL tail
    /// (truncating a torn final record), and resume logging at the next
    /// epoch. A missing or empty directory starts from `S::new_set()`.
    ///
    /// Every subsequent epoch appends its net batch to the WAL *before*
    /// applying it, under `wal.fsync`; once the live segment exceeds
    /// `wal.rotate_bytes` the leader checkpoints the set and rotates.
    /// After a crash, `open_durable` on the same directory restores
    /// exactly the state of the last acknowledged epoch.
    ///
    /// Returns the combiner and a [`RecoveryReport`] describing what was
    /// recovered (`report.last_seq` epochs; `epochs_applied` resumes
    /// from there).
    pub fn open_durable(
        cfg: CombinerConfig,
        wal: WalConfig,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        cfg.check().map_err(PersistError::Config)?;
        let (set, report) = recover::<K, S>(&wal.dir)?;
        let writer = WalWriter::open(wal, report.last_seq + 1)?;
        let combiner = Self {
            published: Mutex::new(Arc::new(set.clone())),
            core: Mutex::new(Core {
                set,
                epochs_applied: report.last_seq,
                wal: Some(DurableState {
                    writer,
                    checkpoint: |set, path| set.save(path),
                }),
                stats: CombinerCounters::new(),
                ewma_seed_ns: 0.0,
            }),
            current: Mutex::new(Arc::new(Epoch::new())),
            cfg,
            queue_depth: cpma_obs::global().gauge("combiner.queue_depth"),
        };
        Ok((combiner, report))
    }

    /// Force a checkpoint of the authoritative set and rotate the WAL
    /// now (the size-triggered rotation does the same when the live
    /// segment outgrows `rotate_bytes`). Waits for an in-flight epoch.
    ///
    /// Returns the epoch sequence the checkpoint covers. Errors if this
    /// combiner was not opened with [`Combiner::open_durable`].
    pub fn checkpoint(&self) -> Result<u64, PersistError> {
        let mut guard = self.core.lock().unwrap();
        let core = &mut *guard;
        let Some(durable) = core.wal.as_mut() else {
            return Err(PersistError::Corrupt(
                "checkpoint() on a combiner without a WAL (use open_durable)".into(),
            ));
        };
        let seq = core.epochs_applied;
        let path = durable.writer.checkpoint_path(seq);
        (durable.checkpoint)(&core.set, &path)?;
        durable.writer.rotate(seq)?;
        Ok(seq)
    }

    /// Flush WAL appends to disk regardless of the [`FsyncPolicy`]
    /// (a planned-shutdown aid for `EveryN`/`Never` deployments).
    /// No-op on a non-durable combiner.
    ///
    /// [`FsyncPolicy`]: cpma_persist::FsyncPolicy
    pub fn wal_sync(&self) -> Result<(), PersistError> {
        if let Some(durable) = self.core.lock().unwrap().wal.as_mut() {
            durable.writer.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn single_thread_ops_match_oracle() {
        let c: Combiner<BTreeSet<u64>> = Combiner::new(BTreeSet::new());
        let mut model = BTreeSet::new();
        let mut rng = cpma_api::testkit::Rng::new(0xC0B1);
        for _ in 0..500 {
            let k = rng.bits(6);
            match rng.below(3) {
                0 => assert_eq!(c.insert(k), model.insert(k), "insert({k})"),
                1 => assert_eq!(c.remove(k), model.remove(&k), "remove({k})"),
                _ => assert_eq!(c.contains(k), model.contains(&k), "contains({k})"),
            }
        }
        let snap = c.snapshot();
        assert_eq!(
            snap.iter().copied().collect::<Vec<_>>(),
            model.iter().copied().collect::<Vec<_>>()
        );
        assert_eq!(c.into_inner(), model);
    }

    #[test]
    fn adaptive_single_thread_ops_match_oracle() {
        // Same oracle run under the adaptive policy: sealing earlier or
        // later never changes linearized results.
        let c: Combiner<BTreeSet<u64>> =
            Combiner::with_config(BTreeSet::new(), CombinerConfig::adaptive());
        let mut model = BTreeSet::new();
        let mut rng = cpma_api::testkit::Rng::new(0xC0B2);
        for _ in 0..300 {
            let k = rng.bits(6);
            match rng.below(3) {
                0 => assert_eq!(c.insert(k), model.insert(k), "insert({k})"),
                1 => assert_eq!(c.remove(k), model.remove(&k), "remove({k})"),
                _ => assert_eq!(c.contains(k), model.contains(&k), "contains({k})"),
            }
        }
        let stats = c.stats();
        assert_eq!(stats.epochs, 300, "solo submitters lead their own epoch");
        assert_eq!(stats.ops, 300);
        assert_eq!(
            stats.sealed_ops_cap + stats.sealed_wait_cap + stats.sealed_rate_drop,
            stats.epochs,
            "every epoch has exactly one seal reason"
        );
        assert_eq!(c.into_inner(), model);
    }

    #[test]
    fn adaptive_solo_epochs_seal_on_rate_drop() {
        // A solo submitter with generous caps: the only way out of the
        // window is the rate-drop check (no further arrivals ever come).
        let cfg = CombinerConfig {
            policy: WindowPolicy::Adaptive(AdaptiveWindow {
                gap_factor: 4,
                idle_grace: Duration::from_micros(50),
                max_window_ops: 1 << 20,
                max_window_wait: Duration::from_secs(30),
            }),
            ..CombinerConfig::default()
        };
        let c: Combiner<BTreeSet<u64>> = Combiner::with_config(BTreeSet::new(), cfg);
        for burst in 0..20u64 {
            let keys: Vec<u64> = (burst * 100..burst * 100 + 64).collect();
            assert_eq!(c.insert_many(&keys), 64);
        }
        let stats = c.stats();
        assert_eq!(stats.epochs, 20);
        assert_eq!(stats.sealed_rate_drop, 20, "{}", stats.summary());
        assert_eq!(stats.ops, 20 * 64);
        // All epochs were 64 ops: a single histogram bucket (log2 == 6).
        assert_eq!(stats.ops_per_epoch_log2[6], 20);
    }

    #[test]
    fn adaptive_ops_cap_seals_big_publications() {
        // A publication larger than max_window_ops seals immediately via
        // the ops cap, before any waiting.
        let cfg = CombinerConfig {
            policy: WindowPolicy::Adaptive(AdaptiveWindow {
                max_window_ops: 8,
                ..AdaptiveWindow::default()
            }),
            ..CombinerConfig::default()
        };
        let c: Combiner<BTreeSet<u64>> = Combiner::with_config(BTreeSet::new(), cfg);
        let keys: Vec<u64> = (0..64).collect();
        assert_eq!(c.insert_many(&keys), 64);
        let stats = c.stats();
        assert_eq!(stats.epochs, 1, "one publication, one epoch");
        assert_eq!(stats.sealed_ops_cap, 1, "{}", stats.summary());
    }

    #[test]
    fn submit_many_matches_per_op_results() {
        let c: Combiner<BTreeSet<u64>> = Combiner::new(BTreeSet::new());
        let burst = [
            Op::Insert(3),
            Op::Insert(3),
            Op::Contains(3),
            Op::Remove(3),
            Op::Contains(3),
            Op::Insert(9),
        ];
        assert_eq!(
            c.submit_many(&burst),
            vec![true, false, true, true, false, true]
        );
        // The whole burst shares one epoch (single-thread: it leads it).
        assert_eq!(c.epochs_applied(), 1);
        assert_eq!(c.insert_many(&[9, 10, 11]), 2);
        assert_eq!(
            c.snapshot().iter().copied().collect::<Vec<_>>(),
            vec![9, 10, 11]
        );
        assert!(c.submit_many(&[]).is_empty());
    }

    #[test]
    fn acked_ops_are_snapshot_visible() {
        let c: Combiner<BTreeSet<u64>> = Combiner::new(BTreeSet::new());
        assert!(c.insert(42));
        assert!(c.snapshot().contains(&42));
        assert!(c.remove(42));
        assert!(!c.snapshot().contains(&42));
    }

    #[test]
    fn ops_resolve_in_submission_order() {
        let c: Combiner<BTreeSet<u64>> = Combiner::new(BTreeSet::new());
        assert!(c.insert(7));
        assert!(!c.insert(7), "second insert sees the first");
        assert!(c.remove(7));
        assert!(!c.remove(7), "second remove sees the first");
        assert!(!c.contains(7));
        assert_eq!(c.epochs_applied(), 5);
        // Reactive fixed windows never wait: every seal is a wait-cap.
        let stats = c.stats();
        assert_eq!(stats.sealed_wait_cap, 5);
        assert_eq!(stats.ops_per_epoch_log2[0], 5);
        c.reset_stats();
        assert_eq!(c.stats(), CombinerStats::default());
    }

    #[test]
    fn snapshot_every_throttles_publication() {
        let cfg = CombinerConfig {
            snapshot_every: 4,
            window_wait: Duration::ZERO,
            ..CombinerConfig::default()
        };
        let c: Combiner<BTreeSet<u64>> = Combiner::with_config(BTreeSet::new(), cfg);
        for k in 0..3u64 {
            c.insert(k);
        }
        // 3 epochs applied, none published yet.
        assert_eq!(c.snapshot().len(), 0);
        c.insert(3);
        assert_eq!(c.snapshot().len(), 4);
    }

    #[test]
    fn bad_configs_rejected() {
        assert_eq!(
            CombinerConfig {
                window_ops: 0,
                ..CombinerConfig::default()
            }
            .check()
            .unwrap_err()
            .field,
            "window_ops"
        );
        assert_eq!(
            CombinerConfig {
                snapshot_every: 0,
                ..CombinerConfig::default()
            }
            .check()
            .unwrap_err()
            .field,
            "snapshot_every"
        );
        assert_eq!(
            CombinerConfig {
                policy: WindowPolicy::Adaptive(AdaptiveWindow {
                    gap_factor: 0,
                    ..AdaptiveWindow::default()
                }),
                ..CombinerConfig::default()
            }
            .check()
            .unwrap_err()
            .field,
            "gap_factor"
        );
        assert_eq!(
            CombinerConfig {
                policy: WindowPolicy::Adaptive(AdaptiveWindow {
                    max_window_ops: 0,
                    ..AdaptiveWindow::default()
                }),
                ..CombinerConfig::default()
            }
            .check()
            .unwrap_err()
            .field,
            "max_window_ops"
        );
        assert_eq!(
            CombinerConfig {
                policy: WindowPolicy::Adaptive(AdaptiveWindow {
                    max_window_wait: Duration::ZERO,
                    idle_grace: Duration::from_micros(1),
                    ..AdaptiveWindow::default()
                }),
                ..CombinerConfig::default()
            }
            .check()
            .unwrap_err()
            .field,
            "max_window_wait"
        );
    }
}
