//! Flat-combining concurrent writer front-end over a batch-parallel set.
//!
//! # Combining epochs
//!
//! Point operations from concurrent threads are collected into *epochs*.
//! A submitting thread appends its operation to the open epoch's
//! publication buffer, then either becomes the **leader** (if the
//! single leader slot — a `Mutex` around the authoritative set — is free)
//! or waits for its epoch's completion. The leader:
//!
//! 1. holds the epoch open for a *combining window* — until the buffer
//!    reaches [`CombinerConfig::window_ops`] operations or
//!    [`CombinerConfig::window_wait`] elapses — so concurrent traffic
//!    accumulates into one batch;
//! 2. seals the epoch (a fresh epoch opens for later submitters) and
//!    replays the drained operations *in submission order* against a
//!    presence overlay, recording each operation's individual result —
//!    this is what makes the epoch linearizable: every operation observes
//!    exactly the operations submitted before it;
//! 3. folds the overlay's net effect into **one mixed op batch**
//!    (normalized by [`cpma_api::normalize_ops`]) and applies it with a
//!    single [`BatchSet::apply_batch_sorted`] call — one batch-parallel
//!    update per epoch, and one structure traversal where the former
//!    remove-batch + insert-batch split paid two;
//! 4. publishes a fresh snapshot (every
//!    [`CombinerConfig::snapshot_every`] epochs), then marks the epoch
//!    done and wakes all waiters with their results.
//!
//! Leadership is re-elected per epoch by `try_lock`: whichever waiter
//! finds the leader slot free next drives the next epoch, so the design
//! needs no dedicated combiner thread and quiesces to zero cost when
//! idle. Everything is built on `std` `Mutex`/`Condvar` only.
//!
//! # Snapshot readers
//!
//! [`Combiner::snapshot`] hands out the most recently published snapshot
//! behind an `Arc` — readers never block behind a writing leader, and an
//! acknowledged operation is visible in the next published snapshot
//! (immediately on acknowledgement with `snapshot_every == 1`, the
//! default, because the leader publishes *before* it wakes waiters).

use cpma_api::{normalize_batch, normalize_ops, BatchOp, BatchSet, ConfigError, RangeSet, SetKey};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, TryLockError};
use std::time::{Duration, Instant};

/// One point operation submitted to a [`Combiner`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op<K> {
    /// Insert the key; acknowledged `true` iff the key was newly added.
    Insert(K),
    /// Remove the key; acknowledged `true` iff the key was present.
    Remove(K),
    /// Linearized membership test (reads that must observe all earlier
    /// writes; use [`Combiner::snapshot`] for wait-free reads).
    Contains(K),
}

impl<K: Copy> Op<K> {
    fn key(&self) -> K {
        match *self {
            Op::Insert(k) | Op::Remove(k) | Op::Contains(k) => k,
        }
    }
}

/// Tuning knobs for the combining epochs.
#[derive(Clone, Debug)]
pub struct CombinerConfig {
    /// The combining-window *target*: while `window_wait` has not
    /// elapsed, the leader holds the epoch open until at least this many
    /// operations are pending. It is a wait threshold, not a cap —
    /// submissions that land before sealing all join the epoch — and it
    /// has no effect when `window_wait` is zero (the leader then never
    /// waits).
    pub window_ops: usize,
    /// How long the leader holds the epoch open waiting for the window
    /// to fill. `Duration::ZERO` (the default) is *reactive* flat
    /// combining: the leader drains whatever is pending and never waits —
    /// batch size then adapts to contention (ops pile up while the
    /// previous epoch applies). A non-zero wait trades latency for bigger
    /// batches on sparse traffic.
    pub window_wait: Duration,
    /// Publish a snapshot every this many epochs. 1 (the default) makes
    /// every acknowledged operation immediately snapshot-visible; larger
    /// values trade snapshot freshness for less cloning on write-heavy
    /// workloads.
    pub snapshot_every: u64,
    /// How long a waiter sleeps before re-checking whether the leader
    /// slot has freed up (bounds leader-handoff latency).
    pub retry_wait: Duration,
}

impl Default for CombinerConfig {
    fn default() -> Self {
        Self {
            window_ops: 64,
            window_wait: Duration::ZERO,
            snapshot_every: 1,
            retry_wait: Duration::from_micros(50),
        }
    }
}

impl CombinerConfig {
    /// Check parameter validity ([`Combiner::with_config`] asserts this).
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.window_ops < 1 {
            return Err(ConfigError::new("window_ops", "must be at least 1"));
        }
        if self.snapshot_every < 1 {
            return Err(ConfigError::new("snapshot_every", "must be at least 1"));
        }
        Ok(())
    }
}

/// The publication buffer for one epoch, shared between its submitters
/// and the leader that drains it.
struct EpochState<K> {
    ops: Vec<Op<K>>,
    /// Set by the leader when it drains the buffer; submitters that find
    /// their epoch sealed re-route to the freshly opened one.
    sealed: bool,
    /// Set (with `results`) after the batch is applied and published.
    done: bool,
    /// `results[i]` answers `ops[i]`; valid once `done`.
    results: Vec<bool>,
}

struct Epoch<K> {
    state: Mutex<EpochState<K>>,
    /// Waiters (submitters) block here until `done`.
    done_cv: Condvar,
    /// The leader blocks here while its combining window fills.
    fill_cv: Condvar,
}

impl<K> Epoch<K> {
    fn new() -> Self {
        Self {
            state: Mutex::new(EpochState {
                ops: Vec::new(),
                sealed: false,
                done: false,
                results: Vec::new(),
            }),
            done_cv: Condvar::new(),
            fill_cv: Condvar::new(),
        }
    }
}

/// Leader-exclusive state: the authoritative set plus the epoch counter.
struct Core<S> {
    set: S,
    epochs_applied: u64,
}

/// A flat-combining concurrent front-end over any batch-parallel set.
///
/// Share it by reference (or `Arc`) across threads; see the
/// [module docs](self) for the epoch protocol.
pub struct Combiner<S, K: SetKey = u64> {
    core: Mutex<Core<S>>,
    current: Mutex<Arc<Epoch<K>>>,
    published: Mutex<Arc<S>>,
    cfg: CombinerConfig,
}

impl<S, K> Combiner<S, K>
where
    K: SetKey,
    S: BatchSet<K> + RangeSet<K> + Clone + Sync,
{
    /// Wrap `set` with the default configuration.
    pub fn new(set: S) -> Self {
        Self::with_config(set, CombinerConfig::default())
    }

    /// Wrap `set` with an explicit configuration.
    ///
    /// # Panics
    /// If `cfg` fails [`CombinerConfig::check`] (an already-constructed
    /// invalid config is a programming error).
    pub fn with_config(set: S, cfg: CombinerConfig) -> Self {
        if let Err(e) = cfg.check() {
            panic!("{e}");
        }
        Self {
            published: Mutex::new(Arc::new(set.clone())),
            core: Mutex::new(Core {
                set,
                epochs_applied: 0,
            }),
            current: Mutex::new(Arc::new(Epoch::new())),
            cfg,
        }
    }

    /// Insert `key`; returns whether it was newly added, linearized
    /// against every other submitted operation.
    pub fn insert(&self, key: K) -> bool {
        self.submit(Op::Insert(key))
    }

    /// Remove `key`; returns whether it was present.
    pub fn remove(&self, key: K) -> bool {
        self.submit(Op::Remove(key))
    }

    /// Linearized membership test (goes through the op stream; for
    /// wait-free reads use [`Combiner::snapshot`]).
    pub fn contains(&self, key: K) -> bool {
        self.submit(Op::Contains(key))
    }

    /// The most recently published snapshot. Never blocks behind a
    /// writing leader — only a pointer clone under a short lock.
    pub fn snapshot(&self) -> Arc<S> {
        self.published.lock().unwrap().clone()
    }

    /// Epochs applied so far (each applied exactly one combined batch).
    pub fn epochs_applied(&self) -> u64 {
        self.core.lock().unwrap().epochs_applied
    }

    /// Unwrap the authoritative set (consumes the combiner, so every
    /// acknowledged operation is included).
    pub fn into_inner(self) -> S {
        self.core.into_inner().unwrap().set
    }

    /// Submit one operation and block until its epoch is applied;
    /// returns the operation's individual result.
    pub fn submit(&self, op: Op<K>) -> bool {
        let (epoch, idx) = self.enqueue(std::slice::from_ref(&op));
        self.await_epoch(&epoch, |st| st.results[idx])
    }

    /// Submit a burst of operations as one publication — one enqueue,
    /// one wait — and block until their epoch is applied. Returns the
    /// per-operation results in submission order. This is the ingest
    /// path: a burst keeps the combined batch large even when writers
    /// are synchronous, which is where batch-parallel updates pull ahead
    /// of per-operation locking.
    pub fn submit_many(&self, ops: &[Op<K>]) -> Vec<bool> {
        if ops.is_empty() {
            return Vec::new();
        }
        let (epoch, start) = self.enqueue(ops);
        let end = start + ops.len();
        self.await_epoch(&epoch, |st| st.results[start..end].to_vec())
    }

    /// Burst-insert convenience: returns how many keys were newly added.
    pub fn insert_many(&self, keys: &[K]) -> usize {
        let ops: Vec<Op<K>> = keys.iter().map(|&k| Op::Insert(k)).collect();
        self.submit_many(&ops).into_iter().filter(|&b| b).count()
    }

    /// Append `ops` to the open epoch (re-routing if a leader seals it
    /// between lookup and push — the new epoch is installed while
    /// `current` is held, so the retry loop is bounded). Returns the
    /// epoch and the index of the first appended op.
    fn enqueue(&self, ops: &[Op<K>]) -> (Arc<Epoch<K>>, usize) {
        let (epoch, idx) = loop {
            let cur = self.current.lock().unwrap().clone();
            let mut st = cur.state.lock().unwrap();
            if !st.sealed {
                let idx = st.ops.len();
                st.ops.extend_from_slice(ops);
                drop(st);
                break (cur, idx);
            }
            drop(st);
            std::thread::yield_now();
        };
        // A leader may be holding its combining window open for us.
        epoch.fill_cv.notify_one();
        (epoch, idx)
    }

    /// Wait until `epoch` completes (leading it ourselves if the leader
    /// slot frees first), then return `extract` of its final state.
    fn await_epoch<R>(&self, epoch: &Arc<Epoch<K>>, extract: impl Fn(&EpochState<K>) -> R) -> R {
        loop {
            // Try to take the leader slot. `try_lock` never blocks, so a
            // running leader just sends us to the wait below.
            match self.core.try_lock() {
                Ok(core) => {
                    // Our epoch may have been completed between enqueue
                    // and lock acquisition.
                    {
                        let st = epoch.state.lock().unwrap();
                        if st.done {
                            return extract(&st);
                        }
                    }
                    // Not done and the leader slot is ours: our epoch is
                    // unsealed (sealed epochs complete before the leader
                    // slot frees), i.e. it is the current epoch — lead it.
                    self.lead(core);
                    let st = epoch.state.lock().unwrap();
                    debug_assert!(st.done, "leader must complete its own epoch");
                    return extract(&st);
                }
                Err(TryLockError::WouldBlock) => {}
                Err(TryLockError::Poisoned(e)) => panic!("combiner poisoned: {e}"),
            }
            let st = epoch.state.lock().unwrap();
            if st.done {
                return extract(&st);
            }
            // Timed wait: on `done` notification we return; on timeout we
            // loop to contend for the (possibly freed) leader slot.
            let (st, _) = epoch.done_cv.wait_timeout(st, self.cfg.retry_wait).unwrap();
            if st.done {
                return extract(&st);
            }
        }
    }

    /// Drive one epoch: window, seal, replay, apply, publish, wake, then
    /// release the leader slot and hand leadership to a waiter of the
    /// next epoch if one is already pending.
    fn lead(&self, mut guard: std::sync::MutexGuard<'_, Core<S>>) {
        let core = &mut *guard;
        let epoch = self.current.lock().unwrap().clone();

        // Combining window: hold the epoch open briefly so concurrent
        // submitters can pile on.
        let ops = {
            let mut st = epoch.state.lock().unwrap();
            let deadline = Instant::now() + self.cfg.window_wait;
            while st.ops.len() < self.cfg.window_ops {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, _) = epoch.fill_cv.wait_timeout(st, deadline - now).unwrap();
                st = g;
            }
            st.sealed = true;
            std::mem::take(&mut st.ops)
        };
        // Open a fresh epoch for subsequent submitters.
        *self.current.lock().unwrap() = Arc::new(Epoch::new());

        // Prefetch the base presence of every distinct key with parallel
        // point lookups — the replay's dominant cost on large backends.
        let mut uniq: Vec<K> = ops.iter().map(|op| op.key()).collect();
        let uniq = normalize_batch(&mut uniq);
        let presence: Vec<bool> = {
            use rayon::prelude::*;
            let set = &core.set;
            uniq.par_iter().map(|&k| set.contains(k)).collect()
        };
        // Replay in submission order against the presence overlay: each
        // operation observes the set as of all operations before it.
        let mut overlay: HashMap<u64, (bool, bool)> = uniq
            .iter()
            .zip(presence)
            .map(|(&k, p)| (k.to_u64(), (p, p))) // key -> (before, now)
            .collect();
        let mut results = Vec::with_capacity(ops.len());
        for op in &ops {
            let entry = overlay
                .get_mut(&op.key().to_u64())
                .expect("every op key was prefetched");
            let result = match op {
                Op::Insert(_) => {
                    let was = entry.1;
                    entry.1 = true;
                    !was
                }
                Op::Remove(_) => {
                    let was = entry.1;
                    entry.1 = false;
                    was
                }
                Op::Contains(_) => entry.1,
            };
            results.push(result);
        }

        // Net effect of the epoch as ONE mixed batch: each changed key
        // becomes its net op, and the backend applies inserts and removes
        // in a single batch-parallel pass. Keys are unique by
        // construction (one overlay entry each); normalize_ops supplies
        // the key ordering the normal form requires.
        let mut net: Vec<BatchOp<K>> = overlay
            .iter()
            .filter_map(|(&key, &(before, now))| match (before, now) {
                (false, true) => Some(BatchOp::Insert(K::from_u64(key))),
                (true, false) => Some(BatchOp::Remove(K::from_u64(key))),
                _ => None,
            })
            .collect();
        let net = normalize_ops(&mut net);
        if !net.is_empty() {
            core.set.apply_batch_sorted(net);
        }
        core.epochs_applied += 1;

        // Publish before waking: an acknowledged op is snapshot-visible.
        if core.epochs_applied.is_multiple_of(self.cfg.snapshot_every) {
            let snap = Arc::new(core.set.clone());
            *self.published.lock().unwrap() = snap;
        }

        let mut st = epoch.state.lock().unwrap();
        st.results = results;
        st.done = true;
        drop(st);
        epoch.done_cv.notify_all();

        // Leadership handoff: if the next epoch already has submitters,
        // wake one *after* releasing the leader slot so it can take over
        // immediately instead of sleeping out its retry timeout.
        let next = self.current.lock().unwrap().clone();
        let pending = !next.state.lock().unwrap().ops.is_empty();
        drop(guard);
        if pending {
            next.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn single_thread_ops_match_oracle() {
        let c: Combiner<BTreeSet<u64>> = Combiner::new(BTreeSet::new());
        let mut model = BTreeSet::new();
        let mut rng = cpma_api::testkit::Rng::new(0xC0B1);
        for _ in 0..500 {
            let k = rng.bits(6);
            match rng.below(3) {
                0 => assert_eq!(c.insert(k), model.insert(k), "insert({k})"),
                1 => assert_eq!(c.remove(k), model.remove(&k), "remove({k})"),
                _ => assert_eq!(c.contains(k), model.contains(&k), "contains({k})"),
            }
        }
        let snap = c.snapshot();
        assert_eq!(
            snap.iter().copied().collect::<Vec<_>>(),
            model.iter().copied().collect::<Vec<_>>()
        );
        assert_eq!(c.into_inner(), model);
    }

    #[test]
    fn submit_many_matches_per_op_results() {
        let c: Combiner<BTreeSet<u64>> = Combiner::new(BTreeSet::new());
        let burst = [
            Op::Insert(3),
            Op::Insert(3),
            Op::Contains(3),
            Op::Remove(3),
            Op::Contains(3),
            Op::Insert(9),
        ];
        assert_eq!(
            c.submit_many(&burst),
            vec![true, false, true, true, false, true]
        );
        // The whole burst shares one epoch (single-thread: it leads it).
        assert_eq!(c.epochs_applied(), 1);
        assert_eq!(c.insert_many(&[9, 10, 11]), 2);
        assert_eq!(
            c.snapshot().iter().copied().collect::<Vec<_>>(),
            vec![9, 10, 11]
        );
        assert!(c.submit_many(&[]).is_empty());
    }

    #[test]
    fn acked_ops_are_snapshot_visible() {
        let c: Combiner<BTreeSet<u64>> = Combiner::new(BTreeSet::new());
        assert!(c.insert(42));
        assert!(c.snapshot().contains(&42));
        assert!(c.remove(42));
        assert!(!c.snapshot().contains(&42));
    }

    #[test]
    fn ops_resolve_in_submission_order() {
        let c: Combiner<BTreeSet<u64>> = Combiner::new(BTreeSet::new());
        assert!(c.insert(7));
        assert!(!c.insert(7), "second insert sees the first");
        assert!(c.remove(7));
        assert!(!c.remove(7), "second remove sees the first");
        assert!(!c.contains(7));
        assert_eq!(c.epochs_applied(), 5);
    }

    #[test]
    fn snapshot_every_throttles_publication() {
        let cfg = CombinerConfig {
            snapshot_every: 4,
            window_wait: Duration::ZERO,
            ..CombinerConfig::default()
        };
        let c: Combiner<BTreeSet<u64>> = Combiner::with_config(BTreeSet::new(), cfg);
        for k in 0..3u64 {
            c.insert(k);
        }
        // 3 epochs applied, none published yet.
        assert_eq!(c.snapshot().len(), 0);
        c.insert(3);
        assert_eq!(c.snapshot().len(), 4);
    }

    #[test]
    fn bad_configs_rejected() {
        assert_eq!(
            CombinerConfig {
                window_ops: 0,
                ..CombinerConfig::default()
            }
            .check()
            .unwrap_err()
            .field,
            "window_ops"
        );
        assert_eq!(
            CombinerConfig {
                snapshot_every: 0,
                ..CombinerConfig::default()
            }
            .check()
            .unwrap_err()
            .field,
            "snapshot_every"
        );
    }
}
