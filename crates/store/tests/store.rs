//! cpma-store integration tests: the sharded wrapper must pass the full
//! canonical contract over real CPMA/PMA backends at several shard
//! counts, and the combiner must linearize concurrent mixed traffic —
//! every acknowledged operation matching a per-thread oracle and visible
//! in the next published snapshot.

use cpma_api::conformance::assert_ordered_set_contract;
use cpma_api::testkit::Rng;
use cpma_api::{BatchSet, OrderedSet, RangeSet};
use cpma_pma::{Cpma, Pma};
use cpma_store::{AdaptiveWindow, Combiner, CombinerConfig, Op, ShardedSet, WindowPolicy};
use std::collections::BTreeSet;
use std::time::Duration;

// ---------------------------------------------------------------------
// ShardedSet: the shared contract at shard counts 1 / 4 / 16.
// ---------------------------------------------------------------------

#[test]
fn sharded_cpma_passes_the_contract_at_1_4_16_shards() {
    assert_ordered_set_contract::<ShardedSet<Cpma, 1>>(0x5A1);
    assert_ordered_set_contract::<ShardedSet<Cpma, 4>>(0x5A4);
    assert_ordered_set_contract::<ShardedSet<Cpma, 16>>(0x5A16);
}

#[test]
fn sharded_pma_and_btreeset_pass_the_contract() {
    // The wrapper is backend-generic; gate it over an uncompressed PMA
    // and the oracle too.
    assert_ordered_set_contract::<ShardedSet<Pma<u64>, 4>>(0x5B4);
    assert_ordered_set_contract::<ShardedSet<BTreeSet<u64>, 4>>(0x5C4);
}

#[test]
fn autotuned_sharded_cpma_passes_the_contract() {
    // With resharding enabled (bounds 2..=32) the wrapper must still be
    // externally indistinguishable from the abstract set: the contract's
    // 30k-element mixed workload drives several grow passes.
    assert_ordered_set_contract::<ShardedSet<Cpma, 4, 2, 32>>(0xA570);
    // Bounds that force an immediate clamp away from N are legal too.
    assert_ordered_set_contract::<ShardedSet<Cpma, 8, 1, 2>>(0xA571);
}

#[test]
fn resharding_round_trip_grows_then_shrinks() {
    type Auto = ShardedSet<Cpma, 4, 2, 32>;
    let mut s: Auto = BatchSet::new_set();
    let mut model: BTreeSet<u64> = BTreeSet::new();
    assert_eq!(s.shard_count(), 4);

    // Grow: three large batches walk the count up (one doubling per
    // rebalance pass while the mean occupancy stays above 2× target).
    let mut rng = Rng::new(0x6707);
    for _ in 0..3 {
        let batch = rng.sorted_batch(30_000, 26);
        let added = s.insert_batch_sorted(&batch);
        let want = batch.iter().filter(|&&k| model.insert(k)).count();
        assert_eq!(added, want);
    }
    let grown = s.shard_count();
    assert!(grown > 4, "expected growth past the initial 4, got {grown}");
    assert!(grown <= 32);
    let stats = s.rebalance_stats();
    assert!(stats.grows >= 1, "{}", stats.summary());
    assert!(
        stats.post_rebalance_imbalance_permille >= 1000,
        "imbalance is fullest/mean, so ≥ 1000‰ by definition: {}",
        stats.summary()
    );
    assert_eq!(
        RangeSet::to_vec(&s),
        model.iter().copied().collect::<Vec<_>>(),
        "contents after growth"
    );

    // Shrink: drain almost everything; the big remove batch both fills
    // the traffic window and pushes occupancy below target/2.
    let all: Vec<u64> = model.iter().copied().collect();
    let (keep, kill) = all.split_at(100);
    assert_eq!(s.remove_batch_sorted(kill), kill.len());
    for k in kill {
        model.remove(k);
    }
    let shrunk = s.shard_count();
    assert!(shrunk < grown, "expected shrink from {grown}, got {shrunk}");
    assert!(shrunk >= 2);
    assert!(s.rebalance_stats().shrinks >= 1);

    // The survivor still behaves: point queries, ranges, and further
    // batches all agree with the oracle after the round trip.
    assert_eq!(RangeSet::to_vec(&s), keep);
    assert_eq!(OrderedSet::len(&s), 100);
    for &k in keep.iter().step_by(7) {
        assert!(OrderedSet::contains(&s, k));
        assert_eq!(
            OrderedSet::successor(&s, k),
            model.range(k..).next().copied()
        );
    }
    assert_eq!(
        s.range_sum(..),
        keep.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    );
    let batch = rng.sorted_batch(5_000, 26);
    let added = s.insert_batch_sorted(&batch);
    let want = batch.iter().filter(|&&k| model.insert(k)).count();
    assert_eq!(added, want);
    assert_eq!(
        RangeSet::to_vec(&s),
        model.iter().copied().collect::<Vec<_>>(),
        "contents after regrowth"
    );
}

#[test]
fn sharded_set_is_transparent_at_any_shard_count() {
    // One workload, three shard counts, plus the unsharded backend: all
    // four must externally behave as the same abstract set.
    let mut rng = Rng::new(0x7A77);
    let mut plain = Cpma::new_set();
    let mut s1: ShardedSet<Cpma, 1> = BatchSet::new_set();
    let mut s4: ShardedSet<Cpma, 4> = BatchSet::new_set();
    let mut s16: ShardedSet<Cpma, 16> = BatchSet::new_set();
    for _ in 0..12 {
        let ins = rng.sorted_batch(2000, 22);
        let n = plain.insert_batch_sorted(&ins);
        assert_eq!(s1.insert_batch_sorted(&ins), n);
        assert_eq!(s4.insert_batch_sorted(&ins), n);
        assert_eq!(s16.insert_batch_sorted(&ins), n);
        let del = rng.sorted_batch(900, 22);
        let n = plain.remove_batch_sorted(&del);
        assert_eq!(s1.remove_batch_sorted(&del), n);
        assert_eq!(s4.remove_batch_sorted(&del), n);
        assert_eq!(s16.remove_batch_sorted(&del), n);
    }
    let want = plain.to_vec();
    assert_eq!(RangeSet::to_vec(&s1), want);
    assert_eq!(RangeSet::to_vec(&s4), want);
    assert_eq!(RangeSet::to_vec(&s16), want);
    assert_eq!(s4.range_sum(..), plain.range_sum(..));
}

// ---------------------------------------------------------------------
// Combiner: oracle-checked concurrent mixed readers and writers.
// ---------------------------------------------------------------------

/// Each writer owns a disjoint key stripe (thread id in the high bits),
/// so its per-op acknowledgements are checkable against a thread-local
/// model even under full concurrency, and an acknowledged write must be
/// visible in the next published snapshot (`snapshot_every == 1`
/// publishes before acknowledging).
fn striped_key(thread: u64, rng: &mut Rng) -> u64 {
    (thread << 32) | rng.bits(10)
}

#[test]
fn combiner_linearizes_concurrent_mixed_traffic() {
    const WRITERS: u64 = 4;
    const OPS_PER_WRITER: usize = 2_000;

    let cfg = CombinerConfig {
        window_ops: 16,
        window_wait: Duration::from_micros(50),
        ..CombinerConfig::default()
    };
    let store: Combiner<ShardedSet<Cpma, 4>> = Combiner::with_config(BatchSet::new_set(), cfg);

    let models: Vec<BTreeSet<u64>> = std::thread::scope(|scope| {
        // A snapshot reader runs throughout: wait-free, internally
        // consistent views (strictly ascending contents, matching len).
        let reader = scope.spawn(|| {
            for _ in 0..200 {
                let snap = store.snapshot();
                let contents = RangeSet::to_vec(&*snap);
                assert!(
                    contents.windows(2).all(|w| w[0] < w[1]),
                    "snapshot contents must be strictly ascending"
                );
                assert_eq!(contents.len(), OrderedSet::len(&*snap));
                std::thread::yield_now();
            }
        });

        let writers: Vec<_> = (0..WRITERS)
            .map(|t| {
                let store = &store;
                scope.spawn(move || {
                    let mut rng = Rng::new(0xAC5_0000 + t);
                    let mut model: BTreeSet<u64> = BTreeSet::new();
                    for i in 0..OPS_PER_WRITER {
                        let k = striped_key(t, &mut rng);
                        match rng.below(4) {
                            0 | 1 => {
                                let acked = store.insert(k);
                                assert_eq!(acked, model.insert(k), "t{t} insert({k})");
                            }
                            2 => {
                                let acked = store.remove(k);
                                assert_eq!(acked, model.remove(&k), "t{t} remove({k})");
                            }
                            _ => {
                                let acked = store.contains(k);
                                assert_eq!(acked, model.contains(&k), "t{t} contains({k})");
                            }
                        }
                        // Periodically: everything acknowledged so far in
                        // this stripe must be visible in the snapshot.
                        if i % 256 == 255 {
                            let snap = store.snapshot();
                            for &k in &model {
                                assert!(
                                    snap.contains(k),
                                    "t{t}: acked key {k} missing from snapshot"
                                );
                            }
                        }
                    }
                    model
                })
            })
            .collect();

        reader.join().unwrap();
        writers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    // Final state: the union of every thread's model, exactly.
    let mut want: Vec<u64> = models.iter().flatten().copied().collect();
    want.sort_unstable();
    let snap = store.snapshot();
    assert_eq!(RangeSet::to_vec(&*snap), want, "final snapshot contents");
    let total_ops = WRITERS * OPS_PER_WRITER as u64;
    let epochs = store.epochs_applied();
    assert!(epochs >= 1 && epochs <= total_ops);
    assert_eq!(RangeSet::to_vec(&store.into_inner()), want);
}

/// Seeded bursty arrivals under the adaptive window policy: concurrent
/// writers publish bursts separated by idle gaps. Every acknowledgement
/// must match the per-stripe oracle, and the always-on stats must
/// account for every epoch — with the hard caps out of reach, each
/// window can only close on an arrival-rate drop.
#[test]
fn adaptive_combiner_linearizes_bursty_traffic() {
    const WRITERS: u64 = 4;
    const BURSTS_PER_WRITER: usize = 25;
    const BURST_LEN: usize = 32;

    let cfg = CombinerConfig {
        policy: WindowPolicy::Adaptive(AdaptiveWindow {
            gap_factor: 8,
            idle_grace: Duration::from_micros(100),
            // Caps far beyond what this workload can reach: every seal
            // below must be a rate drop.
            max_window_ops: 1 << 20,
            max_window_wait: Duration::from_secs(30),
        }),
        ..CombinerConfig::default()
    };
    let store: Combiner<ShardedSet<Cpma, 4>> = Combiner::with_config(BatchSet::new_set(), cfg);

    let models: Vec<BTreeSet<u64>> = std::thread::scope(|scope| {
        (0..WRITERS)
            .map(|t| {
                let store = &store;
                scope.spawn(move || {
                    let mut rng = Rng::new(0xB57_0000 + t);
                    let mut model: BTreeSet<u64> = BTreeSet::new();
                    for burst in 0..BURSTS_PER_WRITER {
                        let ops: Vec<Op<u64>> = (0..BURST_LEN)
                            .map(|_| {
                                let k = striped_key(t, &mut rng);
                                match rng.below(4) {
                                    0 | 1 => Op::Insert(k),
                                    2 => Op::Remove(k),
                                    _ => Op::Contains(k),
                                }
                            })
                            .collect();
                        let acks = store.submit_many(&ops);
                        for (i, (op, acked)) in ops.iter().zip(acks).enumerate() {
                            let want = match *op {
                                Op::Insert(k) => model.insert(k),
                                Op::Remove(k) => model.remove(&k),
                                Op::Contains(k) => model.contains(&k),
                            };
                            assert_eq!(acked, want, "t{t} burst {burst} op {i} ({op:?})");
                        }
                        // Inter-burst idle gap (seeded jitter): the shape
                        // adaptive sealing exists for.
                        std::thread::sleep(Duration::from_micros(200 + rng.below(300)));
                    }
                    model
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|w| w.join().unwrap())
            .collect()
    });

    let mut want: Vec<u64> = models.iter().flatten().copied().collect();
    want.sort_unstable();
    let stats = store.stats();
    let total_ops = WRITERS as usize * BURSTS_PER_WRITER * BURST_LEN;
    assert_eq!(stats.ops, total_ops as u64, "every op counted exactly once");
    assert_eq!(stats.epochs, store.epochs_applied());
    assert_eq!(
        stats.sealed_rate_drop,
        stats.epochs,
        "caps unreachable ⇒ every seal is a rate drop: {}",
        stats.summary()
    );
    assert_eq!(
        stats.ops_per_epoch_log2.iter().sum::<u64>(),
        stats.epochs,
        "histogram covers every epoch"
    );
    // Bursts may combine across writers but never split: a publication
    // lands in one epoch, so there are at most WRITERS × BURSTS epochs.
    assert!(stats.epochs <= WRITERS * (BURSTS_PER_WRITER as u64));
    assert_eq!(RangeSet::to_vec(&store.into_inner()), want);
}
