//! Crash-recovery kill-point suite for the durable [`Combiner`].
//!
//! The durability contract: after a crash at *any* byte of the WAL
//! stream, reopening the directory recovers exactly the state of the
//! last fully-logged epoch — verified against a `BTreeSet` oracle at
//! every cut point (mid-record, at record boundaries, inside the segment
//! header), plus mid-checkpoint crashes and plain between-epoch reopens.

use cpma_api::testkit::Rng;
use cpma_api::{BatchSet, OrderedSet, Persist, PersistError, RangeSet};
use cpma_persist::{recover, FsyncPolicy, WalConfig};
use cpma_pma::Cpma;
use cpma_store::{Combiner, CombinerConfig, Op, ShardTuning, ShardedSet};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpma-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// The single live WAL segment in `dir` (these tests disable rotation
/// unless they rotate explicitly).
fn sole_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    assert_eq!(segs.len(), 1, "expected exactly one segment");
    segs.pop().unwrap()
}

/// One pseudo-random mixed burst per epoch; applying it to a `BTreeSet`
/// tracks exactly what the combiner acknowledges.
fn epoch_burst(rng: &mut Rng, model: &mut BTreeSet<u64>) -> Vec<Op<u64>> {
    let n = 8 + rng.below(25) as usize;
    (0..n)
        .map(|_| {
            let k = rng.bits(9);
            if rng.below(3) == 0 {
                model.remove(&k);
                Op::Remove(k)
            } else {
                model.insert(k);
                Op::Insert(k)
            }
        })
        .collect()
}

fn wal_config(dir: &Path) -> WalConfig {
    let mut cfg = WalConfig::new(dir);
    // Rotation off unless a test forces it; no per-epoch fsync (the
    // "crash" is a copy of live file contents, and EveryN exercises the
    // non-Always policy paths).
    cfg.rotate_bytes = u64::MAX;
    cfg.fsync = FsyncPolicy::EveryN(4);
    cfg
}

/// Crash at every interesting WAL byte: each record boundary, one byte
/// short of it, mid-record, and inside the segment header. Recovery must
/// yield exactly the oracle state after the number of *complete* records,
/// and flag (plus truncate) a torn tail.
#[test]
fn kill_points_at_every_wal_byte() {
    let dir = tmp_dir("killpoints");
    let (combiner, report) =
        Combiner::<Cpma>::open_durable(CombinerConfig::default(), wal_config(&dir)).unwrap();
    assert_eq!(report.last_seq, 0);

    let mut rng = Rng::new(0x4B31_0001);
    let mut model = BTreeSet::new();
    // `states[e]` = oracle contents after e epochs; `ends[e]` = segment
    // length once epoch e is fully logged (ends[0] = header only).
    let mut states: Vec<Vec<u64>> = vec![Vec::new()];
    let mut ends: Vec<u64> = vec![std::fs::metadata(sole_segment(&dir)).unwrap().len()];
    for _ in 0..10 {
        let burst = epoch_burst(&mut rng, &mut model);
        combiner.submit_many(&burst);
        states.push(model.iter().copied().collect());
        ends.push(std::fs::metadata(sole_segment(&dir)).unwrap().len());
    }
    drop(combiner);

    let mut cuts: Vec<u64> = vec![0, 1, ends[0] - 1];
    for e in 1..ends.len() {
        cuts.extend([ends[e], ends[e] - 1, (ends[e - 1] + ends[e]) / 2]);
    }
    let scratch = tmp_dir("killpoints-scratch");
    for &cut in &cuts {
        copy_dir(&dir, &scratch);
        let seg = sole_segment(&scratch);
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let complete = ends.iter().filter(|&&end| end <= cut).count();
        let (recovered, report) = recover::<u64, Cpma>(&scratch).unwrap();
        // A cut below the header drops the segment entirely; otherwise
        // the survivors are exactly the fully-contained records.
        let survivors = complete.saturating_sub(1);
        assert_eq!(
            report.last_seq, survivors as u64,
            "cut at byte {cut}: wrong epoch count"
        );
        assert_eq!(
            recovered.to_vec(),
            states[survivors],
            "cut at byte {cut}: wrong contents"
        );
        let at_boundary = complete > 0 && ends[complete - 1] == cut;
        assert_eq!(
            report.truncated_tail, !at_boundary,
            "cut at byte {cut}: torn-tail flag"
        );

        // Recovery is serviceable, not just correct: reopening the cut
        // directory appends new epochs from where it landed.
        let (reopened, r2) =
            Combiner::<Cpma>::open_durable(CombinerConfig::default(), wal_config(&scratch))
                .unwrap();
        assert_eq!(r2.last_seq, survivors as u64);
        reopened.insert(u64::MAX - cut);
        assert_eq!(reopened.epochs_applied(), survivors as u64 + 1);
        drop(reopened);
        let (again, r3) = recover::<u64, Cpma>(&scratch).unwrap();
        assert_eq!(r3.last_seq, survivors as u64 + 1);
        assert!(again.contains(u64::MAX - cut));
    }
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&scratch).unwrap();
}

/// A crash *between* epochs is the trivial kill point: plain reopen, no
/// torn tail, every acknowledged epoch present — including empty-net
/// epochs (pure `Contains` traffic), which are logged too so the WAL
/// sequence never drifts from `epochs_applied`.
#[test]
fn between_epoch_reopen_continues_exactly() {
    let dir = tmp_dir("reopen");
    let mut rng = Rng::new(0xEB0C);
    let mut model = BTreeSet::new();
    let mut epochs = 0u64;
    for round in 0..3 {
        let (combiner, report) =
            Combiner::<Cpma>::open_durable(CombinerConfig::default(), wal_config(&dir)).unwrap();
        assert_eq!(report.last_seq, epochs, "round {round}");
        assert!(!report.truncated_tail);
        assert_eq!(
            combiner.snapshot().to_vec(),
            model.iter().copied().collect::<Vec<_>>()
        );
        for _ in 0..4 {
            let burst = epoch_burst(&mut rng, &mut model);
            combiner.submit_many(&burst);
            epochs += 1;
        }
        // Read-only epochs advance the sequence without changing state.
        assert_eq!(combiner.contains(42), model.contains(&42));
        epochs += 1;
        assert_eq!(combiner.epochs_applied(), epochs);
        drop(combiner); // crash between epochs
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Mid-checkpoint crashes: a `.tmp` leftover is ignored, and a corrupt
/// newest checkpoint falls back to the older one — with the WAL replayed
/// from there, losing nothing.
#[test]
fn mid_checkpoint_crash_falls_back() {
    let dir = tmp_dir("ckpt-fallback");
    let mut cfg = wal_config(&dir);
    cfg.keep_checkpoints = 4;
    let (combiner, _) = Combiner::<Cpma>::open_durable(CombinerConfig::default(), cfg).unwrap();
    let mut rng = Rng::new(0xC4A5);
    let mut model = BTreeSet::new();
    for _ in 0..5 {
        combiner.submit_many(&epoch_burst(&mut rng, &mut model));
    }
    let first = combiner.checkpoint().unwrap();
    for _ in 0..5 {
        combiner.submit_many(&epoch_burst(&mut rng, &mut model));
    }
    let second = combiner.checkpoint().unwrap();
    assert!(second > first);
    for _ in 0..3 {
        combiner.submit_many(&epoch_burst(&mut rng, &mut model));
    }
    let epochs = combiner.epochs_applied();
    drop(combiner);
    let oracle: Vec<u64> = model.iter().copied().collect();

    // Crash while writing the *next* checkpoint: a stray .tmp must not
    // disturb recovery.
    std::fs::write(
        dir.join(format!("checkpoint-{:020}.tmp", epochs)),
        b"half-written garbage",
    )
    .unwrap();
    let (set, report) = recover::<u64, Cpma>(&dir).unwrap();
    assert_eq!(report.checkpoint_seq, second);
    assert_eq!(report.last_seq, epochs);
    assert_eq!(set.to_vec(), oracle);

    // Corrupt the newest checkpoint itself: recovery must fall back to
    // the first checkpoint and replay the longer WAL tail to the same
    // state.
    let ckpt = dir.join(format!("checkpoint-{second:020}"));
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&ckpt, &bytes).unwrap();
    let (set, report) = recover::<u64, Cpma>(&dir).unwrap();
    assert_eq!(report.checkpoint_seq, first);
    assert!(report.skipped_checkpoints >= 1);
    assert_eq!(report.last_seq, epochs);
    assert_eq!(set.to_vec(), oracle);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Size-triggered rotation end to end on the full production stack
/// (`Combiner<ShardedSet<Cpma>>`): directory checkpoints, pruning of
/// covered segments, crash, recover, continue.
#[test]
fn rotation_and_recovery_on_sharded_stack() {
    type Store = ShardedSet<Cpma, 4>;
    let dir = tmp_dir("sharded-stack");
    let mut cfg = wal_config(&dir);
    cfg.rotate_bytes = 2_000; // force frequent checkpoint+rotate
    let (combiner, _) = Combiner::<Store>::open_durable(CombinerConfig::default(), cfg).unwrap();
    let mut rng = Rng::new(0x5AD0);
    let mut model = BTreeSet::new();
    for _ in 0..40 {
        combiner.submit_many(&epoch_burst(&mut rng, &mut model));
    }
    let epochs = combiner.epochs_applied();
    drop(combiner);

    let checkpoints = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_str()
                .unwrap()
                .starts_with("checkpoint-")
        })
        .count();
    assert!(checkpoints >= 1, "rotation never checkpointed");
    assert!(
        checkpoints <= 2,
        "pruning kept {checkpoints} checkpoints (keep_checkpoints = 2)"
    );

    let (set, report) = recover::<u64, Store>(&dir).unwrap();
    assert_eq!(report.last_seq, epochs);
    assert!(
        report.checkpoint_seq > 0,
        "recovery should use a checkpoint"
    );
    assert_eq!(set.to_vec(), model.iter().copied().collect::<Vec<_>>());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The shard-per-file checkpoint format: whole-structure roundtrip, and
/// typed errors for a corrupted manifest, a missing shard, and a foreign
/// snapshot posing as a manifest.
#[test]
fn sharded_manifest_roundtrip_and_corruption() {
    let dir = tmp_dir("manifest");
    let mut set: ShardedSet<Cpma, 4> = BatchSet::new_set();
    set.set_tuning(ShardTuning::auto(2, 16)).unwrap();
    let keys: Vec<u64> = (0..30_000u64).map(|i| i * 3 + 1).collect();
    set.insert_batch_sorted(&keys);
    let path = dir.join("ckpt");
    set.save(&path).unwrap();

    let back = ShardedSet::<Cpma, 4>::load(&path).unwrap();
    assert_eq!(back.to_vec(), set.to_vec());
    assert_eq!(back.shard_count(), set.shard_count());
    assert_eq!(back.splitters(), set.splitters());
    assert_eq!(back.tuning(), set.tuning());

    // Re-save after shrinking must clear stale shard files.
    let mut shrunk = back;
    shrunk.set_tuning(ShardTuning::fixed(2)).unwrap();
    shrunk.remove_batch_sorted(&keys);
    shrunk.insert_batch_sorted(&[7, 9]);
    shrunk.save(&path).unwrap();
    let reloaded = ShardedSet::<Cpma, 4>::load(&path).unwrap();
    assert_eq!(reloaded.to_vec(), vec![7, 9]);
    assert_eq!(reloaded.shard_count(), shrunk.shard_count());

    // Manifest byte flips: typed error, never a panic.
    let manifest = path.join("MANIFEST");
    let good = std::fs::read(&manifest).unwrap();
    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 0x10;
        std::fs::write(&manifest, &bad).unwrap();
        assert!(
            ShardedSet::<Cpma, 4>::load(&path).is_err(),
            "manifest flip at byte {i} went undetected"
        );
    }
    std::fs::write(&manifest, &good).unwrap();

    // A missing shard file is a load error, not a silent shrink.
    let shard0 = path.join("shard-00000");
    let kept = std::fs::read(&shard0).unwrap();
    std::fs::remove_file(&shard0).unwrap();
    assert!(matches!(
        ShardedSet::<Cpma, 4>::load(&path),
        Err(PersistError::Io(_))
    ));
    std::fs::write(&shard0, &kept).unwrap();

    // A PMA snapshot where the manifest should be: codec mismatch.
    Cpma::new().save(&manifest).unwrap();
    assert!(matches!(
        ShardedSet::<Cpma, 4>::load(&path),
        Err(PersistError::CodecMismatch {
            expected: 100,
            found: 3
        })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `checkpoint()` on a non-durable combiner is a typed error, and
/// `wal_sync` is an explicit no-op there.
#[test]
fn non_durable_combiner_rejects_checkpoint() {
    let combiner: Combiner<Cpma> = Combiner::new(Cpma::new());
    combiner.insert(1);
    assert!(combiner.checkpoint().is_err());
    assert!(combiner.wal_sync().is_ok());
}
