//! Crash recovery: newest valid checkpoint + WAL tail replay.
//!
//! The recovery state machine (also documented in `docs/ARCHITECTURE.md`):
//!
//! ```text
//! scan dir ──▶ try checkpoints newest → oldest ──▶ all fail? use empty base
//!                  │ load ok (base seq B)
//!                  ▼
//!          replay segments in order, skipping records with seq ≤ B,
//!          requiring seq continuity B+1, B+2, ... (gap ⇒ Corrupt)
//!                  │
//!      ┌───────────┼────────────────────────┐
//!      ▼           ▼                        ▼
//!  valid record  damaged record          damaged record
//!  → apply       in the NEWEST segment   in an older segment
//!                → torn tail: truncate   → Corrupt (data loss
//!                  the file there, stop    beyond a torn write)
//! ```
//!
//! A damaged *checkpoint* is recoverable (older checkpoint + longer
//! replay); a damaged record below the WAL tail is not — every record
//! after it is unreachable, so recovery refuses rather than silently
//! dropping acknowledged epochs.

use std::fs::{self, OpenOptions};
use std::path::Path;

use cpma_api::{BatchOp, BatchSet, Persist, PersistError, SetKey};

use crate::wal::{parse_record, parse_segment_header, scan_dir, SEG_HEADER_LEN};

/// What recovery found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence of the checkpoint recovery started from (0 = empty base).
    pub checkpoint_seq: u64,
    /// Epoch sequence of the recovered state — the last acked epoch.
    pub last_seq: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: u64,
    /// True iff a torn tail was found and truncated away.
    pub truncated_tail: bool,
    /// Checkpoints newer than the one used that failed to load.
    pub skipped_checkpoints: u64,
}

/// Recover the durable state in `dir`: load the newest checkpoint that
/// validates (falling back to an empty structure), replay the WAL tail,
/// and truncate any torn final record. Deterministic: the same directory
/// bytes always yield the same state.
pub fn recover<K, S>(dir: &Path) -> Result<(S, RecoveryReport), PersistError>
where
    K: SetKey,
    S: Persist + BatchSet<K>,
{
    fs::create_dir_all(dir)?;
    let (checkpoints, segments) = scan_dir(dir)?;

    let mut skipped = 0u64;
    // Newest checkpoint first, then older ones, then the empty base.
    for (base_seq, path) in checkpoints
        .iter()
        .rev()
        .map(|(seq, p)| (*seq, Some(p)))
        .chain(std::iter::once((0, None)))
    {
        let mut set = match path {
            Some(p) => match S::load(p) {
                Ok(s) => s,
                Err(_) => {
                    skipped += 1;
                    continue;
                }
            },
            None => S::new_set(),
        };
        let tail = replay(&mut set, base_seq, &segments)?;
        return Ok((
            set,
            RecoveryReport {
                checkpoint_seq: base_seq,
                last_seq: tail.last_seq,
                replayed_records: tail.replayed,
                truncated_tail: tail.torn,
                skipped_checkpoints: skipped,
            },
        ));
    }
    unreachable!("the empty base candidate always returns");
}

struct TailState {
    last_seq: u64,
    replayed: u64,
    torn: bool,
}

fn replay<K: SetKey, S: BatchSet<K>>(
    set: &mut S,
    base_seq: u64,
    segments: &[(u64, std::path::PathBuf)],
) -> Result<TailState, PersistError> {
    let mut expected = base_seq + 1;
    let mut replayed = 0u64;
    let mut torn = false;

    'segments: for (idx, (name_seq, path)) in segments.iter().enumerate() {
        let is_newest = idx == segments.len() - 1;
        let bytes = fs::read(path)?;
        match parse_segment_header(&bytes) {
            Ok(first_seq) => {
                if first_seq != *name_seq {
                    return Err(PersistError::Corrupt(format!(
                        "segment {} header says first_seq {first_seq}",
                        path.display()
                    )));
                }
            }
            // The header is written and fsynced before the segment is
            // used, so an incomplete header can only be a torn segment
            // create at the very tail of the log.
            Err(e) => {
                if is_newest && bytes.len() < SEG_HEADER_LEN {
                    fs::remove_file(path)?;
                    torn = true;
                    break 'segments;
                }
                return Err(e);
            }
        }
        let mut at = SEG_HEADER_LEN;
        while at < bytes.len() {
            match parse_record(&bytes[at..]) {
                Some(rec) => {
                    if rec.seq > base_seq {
                        if rec.seq != expected {
                            return Err(PersistError::Corrupt(format!(
                                "wal sequence gap: expected {expected}, found {}",
                                rec.seq
                            )));
                        }
                        apply_record(set, &rec.ops)?;
                        replayed += 1;
                        expected += 1;
                    }
                    at += rec.encoded_len;
                }
                None if is_newest => {
                    // Torn tail: drop the incomplete record and every
                    // byte after it, so the next writer appends cleanly.
                    let f = OpenOptions::new().write(true).open(path)?;
                    f.set_len(at as u64)?;
                    f.sync_all()?;
                    torn = true;
                    break 'segments;
                }
                None => {
                    return Err(PersistError::Corrupt(format!(
                        "damaged wal record below the tail in {}",
                        path.display()
                    )));
                }
            }
        }
    }
    Ok(TailState {
        last_seq: expected - 1,
        replayed,
        torn,
    })
}

fn apply_record<K: SetKey, S: BatchSet<K>>(
    set: &mut S,
    ops: &[BatchOp<u64>],
) -> Result<(), PersistError> {
    let max = K::MAX.to_u64();
    let mut narrowed: Vec<BatchOp<K>> = Vec::with_capacity(ops.len());
    for op in ops {
        let key = op.key();
        if key > max {
            return Err(PersistError::Corrupt(format!(
                "wal key {key} exceeds the key domain"
            )));
        }
        narrowed.push(if op.is_insert() {
            BatchOp::Insert(K::from_u64(key))
        } else {
            BatchOp::Remove(K::from_u64(key))
        });
    }
    set.apply_batch_sorted(&narrowed);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotEnvelope;
    use crate::wal::{segment_file_name, FsyncPolicy, WalConfig, WalWriter};
    use cpma_api::OrderedSet;
    use std::path::PathBuf;

    /// Minimal sorted-vec set with a `Persist` impl — enough structure to
    /// exercise the recovery driver without pulling in `cpma-pma`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct MiniSet(Vec<u64>);

    impl OrderedSet<u64> for MiniSet {
        const NAME: &'static str = "MiniSet";
        fn contains(&self, key: u64) -> bool {
            self.0.binary_search(&key).is_ok()
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn min(&self) -> Option<u64> {
            self.0.first().copied()
        }
        fn max(&self) -> Option<u64> {
            self.0.last().copied()
        }
        fn successor(&self, key: u64) -> Option<u64> {
            let i = self.0.partition_point(|&e| e < key);
            self.0.get(i).copied()
        }
        fn size_bytes(&self) -> usize {
            self.0.len() * 8
        }
    }

    impl BatchSet<u64> for MiniSet {
        fn new_set() -> Self {
            MiniSet(Vec::new())
        }
        fn build_sorted(elems: &[u64]) -> Self {
            MiniSet(elems.to_vec())
        }
        fn insert_batch_sorted(&mut self, batch: &[u64]) -> usize {
            let before = self.0.len();
            self.0.extend_from_slice(batch);
            self.0.sort_unstable();
            self.0.dedup();
            self.0.len() - before
        }
        fn remove_batch_sorted(&mut self, batch: &[u64]) -> usize {
            let before = self.0.len();
            self.0.retain(|e| batch.binary_search(e).is_err());
            before - self.0.len()
        }
    }

    impl Persist for MiniSet {
        fn save(&self, path: &Path) -> Result<(), PersistError> {
            let mut payload = Vec::with_capacity(self.0.len() * 8);
            for &e in &self.0 {
                payload.extend_from_slice(&e.to_le_bytes());
            }
            SnapshotEnvelope {
                codec_id: 1000,
                meta: vec![],
                payload,
            }
            .save_file(path)
        }
        fn load(path: &Path) -> Result<Self, PersistError> {
            let env = SnapshotEnvelope::load_file(path)?;
            if env.codec_id != 1000 {
                return Err(PersistError::CodecMismatch {
                    expected: 1000,
                    found: env.codec_id,
                });
            }
            if env.payload.len() % 8 != 0 {
                return Err(PersistError::Truncated("miniset payload"));
            }
            let elems: Vec<u64> = env
                .payload
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            if elems.windows(2).any(|w| w[0] >= w[1]) {
                return Err(PersistError::Corrupt("miniset not ascending".into()));
            }
            Ok(MiniSet(elems))
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpma-rec-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ins(k: u64) -> BatchOp<u64> {
        BatchOp::Insert(k)
    }

    #[test]
    fn empty_dir_recovers_fresh() {
        let dir = tmp_dir("fresh");
        let (set, report) = recover::<u64, MiniSet>(&dir).unwrap();
        assert!(set.0.is_empty());
        assert_eq!(report, RecoveryReport::default());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_only_replay() {
        let dir = tmp_dir("walonly");
        let mut w = WalWriter::open(WalConfig::new(&dir), 1).unwrap();
        w.append(1, &[ins(10), ins(20)]).unwrap();
        w.append(2, &[BatchOp::Remove(10), ins(30)]).unwrap();
        w.append(3, &[]).unwrap();
        drop(w);
        let (set, report) = recover::<u64, MiniSet>(&dir).unwrap();
        assert_eq!(set.0, vec![20, 30]);
        assert_eq!(report.last_seq, 3);
        assert_eq!(report.replayed_records, 3);
        assert!(!report.truncated_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_plus_tail() {
        let dir = tmp_dir("ckpt");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            ..WalConfig::new(&dir)
        };
        let mut w = WalWriter::open(cfg, 1).unwrap();
        w.append(1, &[ins(1)]).unwrap();
        w.append(2, &[ins(2)]).unwrap();
        MiniSet(vec![1, 2]).save(&w.checkpoint_path(2)).unwrap();
        w.rotate(2).unwrap();
        w.append(3, &[ins(3)]).unwrap();
        w.sync().unwrap();
        drop(w);
        let (set, report) = recover::<u64, MiniSet>(&dir).unwrap();
        assert_eq!(set.0, vec![1, 2, 3]);
        assert_eq!(report.checkpoint_seq, 2);
        assert_eq!(report.last_seq, 3);
        assert_eq!(report.replayed_records, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back() {
        let dir = tmp_dir("fallback");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            keep_checkpoints: 2,
            ..WalConfig::new(&dir)
        };
        let mut w = WalWriter::open(cfg, 1).unwrap();
        w.append(1, &[ins(1)]).unwrap();
        MiniSet(vec![1]).save(&w.checkpoint_path(1)).unwrap();
        w.rotate(1).unwrap();
        w.append(2, &[ins(2)]).unwrap();
        let newest = w.checkpoint_path(2);
        MiniSet(vec![1, 2]).save(&newest).unwrap();
        w.rotate(2).unwrap();
        w.append(3, &[ins(3)]).unwrap();
        w.sync().unwrap();
        drop(w);
        // Flip a payload byte in the newest checkpoint.
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() - 12;
        bytes[mid] ^= 0xff;
        fs::write(&newest, &bytes).unwrap();

        let (set, report) = recover::<u64, MiniSet>(&dir).unwrap();
        assert_eq!(set.0, vec![1, 2, 3]);
        assert_eq!(report.checkpoint_seq, 1);
        assert_eq!(report.skipped_checkpoints, 1);
        assert_eq!(report.replayed_records, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmp_dir("torn");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            ..WalConfig::new(&dir)
        };
        let mut w = WalWriter::open(cfg.clone(), 1).unwrap();
        w.append(1, &[ins(1)]).unwrap();
        w.append(2, &[ins(2)]).unwrap();
        w.sync().unwrap();
        drop(w);
        let seg = dir.join(segment_file_name(1));
        let full = fs::read(&seg).unwrap();
        // Chop into the middle of record 2.
        let cut = full.len() - 5;
        fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(cut as u64)
            .unwrap();

        let (set, report) = recover::<u64, MiniSet>(&dir).unwrap();
        assert_eq!(set.0, vec![1]);
        assert_eq!(report.last_seq, 1);
        assert!(report.truncated_tail);
        // The torn bytes are physically gone; appending resumes cleanly.
        let mut w = WalWriter::open(cfg, 2).unwrap();
        w.append(2, &[ins(7)]).unwrap();
        w.sync().unwrap();
        drop(w);
        let (set, report) = recover::<u64, MiniSet>(&dir).unwrap();
        assert_eq!(set.0, vec![1, 7]);
        assert_eq!(report.last_seq, 2);
        assert!(!report.truncated_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_damage_is_refused() {
        use crate::wal::{encode_record, encode_segment_header};
        let dir = tmp_dir("midlog");
        // Two live segments, no checkpoint: both must replay cleanly.
        let mut seg1 = encode_segment_header(1).to_vec();
        seg1.extend_from_slice(&encode_record(1, &[ins(1)]));
        let mut seg2 = encode_segment_header(2).to_vec();
        seg2.extend_from_slice(&encode_record(2, &[ins(2)]));
        // Damage the record in the OLDER segment.
        let n = seg1.len();
        seg1[n - 3] ^= 0x01;
        fs::write(dir.join(segment_file_name(1)), &seg1).unwrap();
        fs::write(dir.join(segment_file_name(2)), &seg2).unwrap();

        let err = recover::<u64, MiniSet>(&dir).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_gap_is_refused() {
        let dir = tmp_dir("gap");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            ..WalConfig::new(&dir)
        };
        let mut w = WalWriter::open(cfg, 5).unwrap();
        // First record claims seq 5 with no checkpoint ≥ 4 to anchor it.
        w.append(5, &[ins(1)]).unwrap();
        w.sync().unwrap();
        drop(w);
        let err = recover::<u64, MiniSet>(&dir).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_segment_create_is_dropped() {
        let dir = tmp_dir("torncreate");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            ..WalConfig::new(&dir)
        };
        let mut w = WalWriter::open(cfg, 1).unwrap();
        w.append(1, &[ins(1)]).unwrap();
        w.sync().unwrap();
        drop(w);
        // Simulate a crash mid-create of the next segment: header cut short.
        fs::write(dir.join(segment_file_name(2)), [0u8; 7]).unwrap();
        let (set, report) = recover::<u64, MiniSet>(&dir).unwrap();
        assert_eq!(set.0, vec![1]);
        assert_eq!(report.last_seq, 1);
        assert!(report.truncated_tail);
        assert!(!dir.join(segment_file_name(2)).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fuzz_random_tail_truncations_never_panic() {
        // Truncate the single-segment WAL at EVERY byte length; recovery
        // must always succeed with a prefix of the acked epochs.
        let dir = tmp_dir("fuzztrunc");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            ..WalConfig::new(&dir)
        };
        let mut w = WalWriter::open(cfg, 1).unwrap();
        let mut boundaries = vec![];
        for seq in 1..=5u64 {
            w.append(seq, &[ins(seq * 100), ins(seq * 100 + 1)])
                .unwrap();
            w.sync().unwrap();
            boundaries.push(fs::metadata(dir.join(segment_file_name(1))).unwrap().len());
        }
        drop(w);
        let seg = dir.join(segment_file_name(1));
        let full = fs::read(&seg).unwrap();
        for cut in 0..=full.len() {
            let case = tmp_dir(&format!("fuzztrunc-{cut}"));
            fs::write(case.join(segment_file_name(1)), &full[..cut]).unwrap();
            if (cut as u64) < SEG_HEADER_LEN as u64 {
                // Torn create: dropped entirely, fresh state.
                let (set, _) = recover::<u64, MiniSet>(&case).unwrap();
                assert!(set.0.is_empty());
            } else {
                let (set, report) = recover::<u64, MiniSet>(&case).unwrap();
                let complete = boundaries.iter().filter(|&&b| b <= cut as u64).count() as u64;
                assert_eq!(report.last_seq, complete, "cut at {cut}");
                assert_eq!(set.len(), complete as usize * 2);
            }
            fs::remove_dir_all(&case).unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fuzz_byte_flips_never_panic() {
        // Flip every byte of a two-record segment: recovery must either
        // succeed (flip landed past the tail we keep) or return a typed
        // error — never panic.
        let dir = tmp_dir("fuzzflip");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            ..WalConfig::new(&dir)
        };
        let mut w = WalWriter::open(cfg, 1).unwrap();
        w.append(1, &[ins(10)]).unwrap();
        w.append(2, &[ins(20)]).unwrap();
        w.sync().unwrap();
        drop(w);
        let seg = dir.join(segment_file_name(1));
        let full = fs::read(&seg).unwrap();
        for i in 0..full.len() {
            let case = tmp_dir(&format!("fuzzflip-{i}"));
            let mut bytes = full.clone();
            bytes[i] ^= 0x20;
            fs::write(case.join(segment_file_name(1)), &bytes).unwrap();
            match recover::<u64, MiniSet>(&case) {
                Ok((set, report)) => {
                    assert!(report.last_seq <= 2);
                    assert!(set.len() <= 2);
                }
                Err(e) => {
                    let _ = e.to_string();
                }
            }
            fs::remove_dir_all(&case).unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
