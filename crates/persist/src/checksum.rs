//! FNV-1a 64-bit checksums.
//!
//! Every persisted region (snapshot header, snapshot payload, each WAL
//! record body) carries one. FNV-1a is not cryptographic — the threat
//! model is torn writes and bit rot, not forgery — but it is std-only,
//! byte-order independent, and detects every single-byte flip and every
//! truncation the corruption tests inject.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64 hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// Final digest.
    pub fn finish(self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values for the standard FNV-1a 64 parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Fnv64::new();
        for chunk in data.chunks(5) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), fnv1a64(data));
    }

    #[test]
    fn detects_single_byte_flips() {
        let data: Vec<u8> = (0..=255u8).collect();
        let base = fnv1a64(&data);
        for i in 0..data.len() {
            let mut flipped = data.clone();
            flipped[i] ^= 0x40;
            assert_ne!(fnv1a64(&flipped), base, "flip at {i} undetected");
        }
    }
}
