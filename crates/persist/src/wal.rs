//! The epoch write-ahead log: segments, records, fsync policy, rotation.
//!
//! One WAL directory holds three kinds of files:
//!
//! * `wal-<first_seq>.log` — a *segment*: a fixed header followed by one
//!   record per combiner epoch, in sequence order. `<first_seq>` is the
//!   zero-padded sequence number of the first record the segment holds,
//!   so lexical order equals replay order.
//! * `checkpoint-<seq>` — a full snapshot of the store as of epoch
//!   `<seq>` (written by the structure's `Persist` impl).
//! * `*.tmp` — in-flight atomic writes; ignored (and harmless) after a
//!   crash.
//!
//! ```text
//! segment header (28 bytes)            record (one per epoch)
//! ------------------------            ---------------------------------
//!  0  8  magic "CPMAWAL0"              0      4  body length L (LE u32)
//!  8  4  version (LE u32, 1)           4      L  body:
//! 12  8  first_seq (LE u64)                        seq   (LE u64)
//! 20  8  FNV-1a 64 of bytes [0,20)                 nops  (LE u32)
//!                                                  nops × [tag u8 | key LE u64]
//!                                      4+L    8  FNV-1a 64 of the body
//! ```
//!
//! `tag` is 1 for insert, 0 for remove. A record is appended (and fsynced
//! per [`FsyncPolicy`]) *before* the epoch's batch is applied or its
//! snapshot published — the WAL invariant that makes every acknowledged
//! epoch recoverable. Empty epochs still get a (12-byte-body) record so
//! the WAL sequence stays in lockstep with `epochs_applied`.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use cpma_api::{BatchOp, ConfigError, PersistError};
use cpma_obs::{Counter, Histogram, Unit};

use crate::checksum::fnv1a64;

/// Process-shared WAL metrics (`persist.wal.*`): every [`WalWriter`] in
/// the process feeds the same cells, so the registry shows total WAL
/// traffic without threading handles through the writer's `Debug`-derived
/// struct. Byte/append counts are deterministic; the `.ns` histograms are
/// timing-derived.
struct WalMetrics {
    appends: Counter,
    appended_bytes: Counter,
    fsyncs: Counter,
    append_ns: Histogram,
    fsync_ns: Histogram,
}

fn metrics() -> &'static WalMetrics {
    static M: std::sync::OnceLock<WalMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let r = cpma_obs::global();
        WalMetrics {
            appends: r.shared_counter("persist.wal.appends", Unit::Count),
            appended_bytes: r.shared_counter("persist.wal.appended_bytes", Unit::Bytes),
            fsyncs: r.shared_counter("persist.wal.fsyncs", Unit::Count),
            append_ns: r.shared_histogram("persist.wal.append.ns", Unit::Nanos),
            fsync_ns: r.shared_histogram("persist.wal.fsync.ns", Unit::Nanos),
        }
    })
}

/// Magic bytes opening every WAL segment.
pub const WAL_MAGIC: [u8; 8] = *b"CPMAWAL0";

/// Segment format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;

/// Byte length of the segment header.
pub const SEG_HEADER_LEN: usize = 28;

/// Bytes per encoded op inside a record body.
const OP_BYTES: usize = 9;

/// Fixed body bytes before the ops (seq + nops).
const BODY_FIXED: usize = 12;

/// When the WAL file is flushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record — every acked epoch survives power loss.
    Always,
    /// fsync every N records — bounded loss window, much cheaper.
    EveryN(u64),
    /// never fsync explicitly — survives process crash, not power loss.
    Never,
}

/// Durability configuration for a combiner's WAL directory.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Directory holding segments and checkpoints (created if absent).
    pub dir: PathBuf,
    /// When records reach stable storage.
    pub fsync: FsyncPolicy,
    /// Once the live segment exceeds this many bytes, the next epoch
    /// boundary writes a checkpoint and rotates to a fresh segment.
    pub rotate_bytes: u64,
    /// How many checkpoints to retain (≥ 1). Older checkpoints and the
    /// segments they cover are deleted at rotation.
    pub keep_checkpoints: usize,
}

impl WalConfig {
    /// Durable defaults: fsync every record, rotate at 4 MiB, keep the
    /// two newest checkpoints (so one corrupt checkpoint still recovers).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            rotate_bytes: 4 << 20,
            keep_checkpoints: 2,
        }
    }

    /// Validate the configuration.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.keep_checkpoints == 0 {
            return Err(ConfigError::new("keep_checkpoints", "must be ≥ 1"));
        }
        if let FsyncPolicy::EveryN(0) = self.fsync {
            return Err(ConfigError::new(
                "fsync",
                "EveryN(0) is meaningless; use Always",
            ));
        }
        if self.rotate_bytes < SEG_HEADER_LEN as u64 + 1 {
            return Err(ConfigError::new(
                "rotate_bytes",
                "must exceed the segment header size",
            ));
        }
        Ok(())
    }
}

/// File name of the segment whose first record is `first_seq`.
pub fn segment_file_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

/// File name of the checkpoint taken at epoch `seq`.
pub fn checkpoint_file_name(seq: u64) -> String {
    format!("checkpoint-{seq:020}")
}

/// Parse `wal-<seq>.log` back to its first sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    (digits.len() == 20).then(|| digits.parse().ok())?
}

/// Parse `checkpoint-<seq>` back to its sequence number.
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("checkpoint-")?;
    (digits.len() == 20).then(|| digits.parse().ok())?
}

/// Ascending `(seq, path)` list — checkpoints or segments of one WAL dir.
pub type SeqPaths = Vec<(u64, PathBuf)>;

/// Scan a WAL directory: `(checkpoints, segments)`, each as ascending
/// `(seq, path)` lists. Unknown names and `*.tmp` leftovers are ignored.
pub fn scan_dir(dir: &Path) -> Result<(SeqPaths, SeqPaths), PersistError> {
    let mut checkpoints = Vec::new();
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let Some(name) = entry.file_name().to_str().map(str::to_owned) else {
            continue;
        };
        if let Some(seq) = parse_checkpoint_name(&name) {
            checkpoints.push((seq, entry.path()));
        } else if let Some(seq) = parse_segment_name(&name) {
            segments.push((seq, entry.path()));
        }
    }
    checkpoints.sort_unstable_by_key(|&(seq, _)| seq);
    segments.sort_unstable_by_key(|&(seq, _)| seq);
    Ok((checkpoints, segments))
}

/// Serialize the 28-byte segment header.
pub fn encode_segment_header(first_seq: u64) -> [u8; SEG_HEADER_LEN] {
    let mut h = [0u8; SEG_HEADER_LEN];
    h[0..8].copy_from_slice(&WAL_MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&first_seq.to_le_bytes());
    let crc = fnv1a64(&h[..20]);
    h[20..28].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Validate a segment header, returning its `first_seq`.
pub fn parse_segment_header(bytes: &[u8]) -> Result<u64, PersistError> {
    if bytes.len() < SEG_HEADER_LEN {
        return Err(PersistError::Truncated("wal segment header"));
    }
    let magic: [u8; 8] = bytes[0..8].try_into().unwrap();
    if magic != WAL_MAGIC {
        return Err(PersistError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version == 0 || version > WAL_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: WAL_VERSION,
        });
    }
    let crc = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    if fnv1a64(&bytes[..20]) != crc {
        return Err(PersistError::ChecksumMismatch("wal segment header"));
    }
    Ok(u64::from_le_bytes(bytes[12..20].try_into().unwrap()))
}

/// Serialize one epoch record (keys widened to `u64`).
pub fn encode_record(seq: u64, ops: &[BatchOp<u64>]) -> Vec<u8> {
    let body_len = BODY_FIXED + ops.len() * OP_BYTES;
    let mut out = Vec::with_capacity(4 + body_len + 8);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        out.push(op.is_insert() as u8);
        out.extend_from_slice(&op.key().to_le_bytes());
    }
    let crc = fnv1a64(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// One record decoded from a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Epoch sequence number.
    pub seq: u64,
    /// The epoch's normalized op stream (ascending keys, one op/key).
    pub ops: Vec<BatchOp<u64>>,
    /// Total encoded bytes (length prefix + body + checksum).
    pub encoded_len: usize,
}

/// Parse the record at the start of `buf`. `Ok(None)` means the bytes do
/// not form a complete valid record — a torn tail if this is the end of
/// the newest segment, corruption otherwise; the caller knows which.
///
/// `nops` is validated against the declared body length, and the body
/// length against the bytes actually present, before any allocation.
pub fn parse_record(buf: &[u8]) -> Option<WalRecord> {
    if buf.len() < 4 {
        return None;
    }
    let body_len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if body_len < BODY_FIXED || !(body_len - BODY_FIXED).is_multiple_of(OP_BYTES) {
        return None;
    }
    let total = 4 + body_len + 8;
    if buf.len() < total {
        return None;
    }
    let body = &buf[4..4 + body_len];
    let crc = u64::from_le_bytes(buf[4 + body_len..total].try_into().unwrap());
    if fnv1a64(body) != crc {
        return None;
    }
    let seq = u64::from_le_bytes(body[0..8].try_into().unwrap());
    let nops = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
    if nops != (body_len - BODY_FIXED) / OP_BYTES {
        return None;
    }
    let mut ops = Vec::with_capacity(nops);
    let mut prev: Option<u64> = None;
    for i in 0..nops {
        let at = BODY_FIXED + i * OP_BYTES;
        let tag = body[at];
        if tag > 1 {
            return None;
        }
        let key = u64::from_le_bytes(body[at + 1..at + OP_BYTES].try_into().unwrap());
        // Normal form: strictly ascending keys (what the combiner logs).
        if prev.is_some_and(|p| p >= key) {
            return None;
        }
        prev = Some(key);
        ops.push(if tag == 1 {
            BatchOp::Insert(key)
        } else {
            BatchOp::Remove(key)
        });
    }
    Some(WalRecord {
        seq,
        ops,
        encoded_len: total,
    })
}

/// Appends epoch records to the live segment; owns fsync and rotation.
#[derive(Debug)]
pub struct WalWriter {
    cfg: WalConfig,
    file: File,
    segment_bytes: u64,
    appends_since_sync: u64,
}

impl WalWriter {
    /// Open the WAL at `cfg.dir` for appending, with the next record
    /// expected to carry sequence `next_seq`. Appends to the newest
    /// existing segment (recovery must already have truncated any torn
    /// tail) or starts `wal-<next_seq>.log` in an empty directory.
    pub fn open(cfg: WalConfig, next_seq: u64) -> Result<Self, PersistError> {
        cfg.check()?;
        fs::create_dir_all(&cfg.dir)?;
        let (_, segments) = scan_dir(&cfg.dir)?;
        if let Some((_, path)) = segments.last() {
            let file = OpenOptions::new().append(true).open(path)?;
            let segment_bytes = file.metadata()?.len();
            Ok(Self {
                cfg,
                file,
                segment_bytes,
                appends_since_sync: 0,
            })
        } else {
            let (file, segment_bytes) = Self::create_segment(&cfg.dir, next_seq)?;
            Ok(Self {
                cfg,
                file,
                segment_bytes,
                appends_since_sync: 0,
            })
        }
    }

    fn create_segment(dir: &Path, first_seq: u64) -> Result<(File, u64), PersistError> {
        let path = dir.join(segment_file_name(first_seq));
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(path)?;
        file.write_all(&encode_segment_header(first_seq))?;
        file.sync_all()?;
        Ok((file, SEG_HEADER_LEN as u64))
    }

    /// Append the record for epoch `seq` and apply the fsync policy.
    /// Must be called with consecutive sequence numbers.
    pub fn append(&mut self, seq: u64, ops: &[BatchOp<u64>]) -> Result<(), PersistError> {
        let m = metrics();
        let mut span = cpma_obs::span_with(&m.append_ns, "persist.wal.append");
        let rec = encode_record(seq, ops);
        span.set_items(ops.len() as u64);
        m.appends.inc();
        m.appended_bytes.add(rec.len() as u64);
        self.file.write_all(&rec)?;
        self.segment_bytes += rec.len() as u64;
        self.appends_since_sync += 1;
        match self.cfg.fsync {
            FsyncPolicy::Always => {
                self.fsync_data()?;
            }
            FsyncPolicy::EveryN(n) => {
                if self.appends_since_sync >= n {
                    self.fsync_data()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// `sync_data` with fsync accounting (`persist.wal.fsyncs`,
    /// `persist.wal.fsync.ns`).
    fn fsync_data(&mut self) -> Result<(), PersistError> {
        let m = metrics();
        m.fsyncs.inc();
        m.fsync_ns.time(|| self.file.sync_data())?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// True once the live segment has outgrown `rotate_bytes` — the
    /// caller should checkpoint at the current epoch and call
    /// [`rotate`](Self::rotate).
    pub fn should_rotate(&self) -> bool {
        self.segment_bytes >= self.cfg.rotate_bytes
    }

    /// Where the checkpoint for epoch `seq` belongs.
    pub fn checkpoint_path(&self, seq: u64) -> PathBuf {
        self.cfg.dir.join(checkpoint_file_name(seq))
    }

    /// Rotate after a checkpoint at `checkpoint_seq` has been written:
    /// seal the live segment, start `wal-<checkpoint_seq + 1>.log`, prune
    /// checkpoints beyond `keep_checkpoints`, and delete segments wholly
    /// covered by the oldest retained checkpoint.
    pub fn rotate(&mut self, checkpoint_seq: u64) -> Result<(), PersistError> {
        // Everything the checkpoint covers must be durable before any
        // segment it replaces can be deleted.
        self.file.sync_all()?;
        let (file, segment_bytes) = Self::create_segment(&self.cfg.dir, checkpoint_seq + 1)?;
        self.file = file;
        self.segment_bytes = segment_bytes;
        self.appends_since_sync = 0;

        let (checkpoints, segments) = scan_dir(&self.cfg.dir)?;
        let keep = self.cfg.keep_checkpoints;
        if checkpoints.len() > keep {
            for (_, path) in &checkpoints[..checkpoints.len() - keep] {
                // A checkpoint may be a single file (PMA snapshot) or a
                // directory (sharded shard-per-file checkpoint).
                if path.is_dir() {
                    fs::remove_dir_all(path)?;
                } else {
                    fs::remove_file(path)?;
                }
            }
        }
        let oldest_kept = checkpoints[checkpoints.len().saturating_sub(keep)].0;
        // A segment covers [first_seq, next_segment.first_seq - 1]; it can
        // go once that whole range is at or below the oldest checkpoint.
        for w in segments.windows(2) {
            let (_, ref path) = w[0];
            let (next_first, _) = w[1];
            if next_first <= oldest_kept + 1 {
                fs::remove_file(path)?;
            }
        }
        Ok(())
    }

    /// Flush buffered records to stable storage regardless of policy.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.fsync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpma-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ops(keys: &[(u64, bool)]) -> Vec<BatchOp<u64>> {
        keys.iter()
            .map(|&(k, ins)| {
                if ins {
                    BatchOp::Insert(k)
                } else {
                    BatchOp::Remove(k)
                }
            })
            .collect()
    }

    #[test]
    fn record_roundtrip_and_damage() {
        let ops = ops(&[(3, true), (7, false), (1000, true)]);
        let enc = encode_record(42, &ops);
        let rec = parse_record(&enc).expect("valid record");
        assert_eq!(rec.seq, 42);
        assert_eq!(rec.ops, ops);
        assert_eq!(rec.encoded_len, enc.len());

        // Empty-op records are valid (idle epochs).
        let empty = encode_record(7, &[]);
        let rec = parse_record(&empty).unwrap();
        assert_eq!((rec.seq, rec.ops.len()), (7, 0));

        // Any byte flip kills the record.
        for i in 0..enc.len() {
            let mut bad = enc.clone();
            bad[i] ^= 0x02;
            assert!(parse_record(&bad).is_none(), "flip at {i} undetected");
        }
        // Any truncation kills the record.
        for n in 0..enc.len() {
            assert!(parse_record(&enc[..n]).is_none(), "truncation to {n}");
        }
        // A huge declared length cannot over-read or over-allocate.
        let mut huge = enc.clone();
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(parse_record(&huge).is_none());
    }

    #[test]
    fn records_must_be_normal_form() {
        // Descending keys → rejected.
        let bad = encode_record(1, &ops(&[(9, true), (3, true)]));
        assert!(parse_record(&bad).is_none());
        // Duplicate keys → rejected.
        let dup = encode_record(1, &ops(&[(3, true), (3, false)]));
        assert!(parse_record(&dup).is_none());
    }

    #[test]
    fn segment_header_roundtrip() {
        let h = encode_segment_header(99);
        assert_eq!(parse_segment_header(&h).unwrap(), 99);
        for i in 0..h.len() {
            let mut bad = h;
            bad[i] ^= 0x10;
            assert!(parse_segment_header(&bad).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn file_names_roundtrip_and_sort() {
        assert_eq!(parse_segment_name(&segment_file_name(17)), Some(17));
        assert_eq!(parse_checkpoint_name(&checkpoint_file_name(17)), Some(17));
        assert_eq!(parse_segment_name("wal-17.log"), None); // unpadded
        assert_eq!(parse_segment_name("checkpoint-x"), None);
        assert!(segment_file_name(9) < segment_file_name(10));
        assert!(segment_file_name(999) < segment_file_name(1000));
    }

    #[test]
    fn writer_appends_and_reopens() {
        let dir = tmp_dir("append");
        let cfg = WalConfig {
            fsync: FsyncPolicy::EveryN(2),
            ..WalConfig::new(&dir)
        };
        let mut w = WalWriter::open(cfg.clone(), 1).unwrap();
        w.append(1, &ops(&[(5, true)])).unwrap();
        w.append(2, &ops(&[(5, false), (9, true)])).unwrap();
        drop(w);
        // Reopen appends to the same segment.
        let mut w = WalWriter::open(cfg, 3).unwrap();
        w.append(3, &[]).unwrap();
        w.sync().unwrap();

        let bytes = fs::read(dir.join(segment_file_name(1))).unwrap();
        assert_eq!(parse_segment_header(&bytes).unwrap(), 1);
        let mut at = SEG_HEADER_LEN;
        let mut seqs = Vec::new();
        while at < bytes.len() {
            let rec = parse_record(&bytes[at..]).expect("complete record");
            seqs.push(rec.seq);
            at += rec.encoded_len;
        }
        assert_eq!(seqs, vec![1, 2, 3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_prunes_old_state() {
        let dir = tmp_dir("rotate");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            rotate_bytes: 64, // tiny: rotate almost every epoch
            keep_checkpoints: 2,
            ..WalConfig::new(&dir)
        };
        let mut w = WalWriter::open(cfg, 1).unwrap();
        let mut rotations = Vec::new();
        for seq in 1..=20u64 {
            w.append(seq, &ops(&[(seq * 10, true)])).unwrap();
            if w.should_rotate() {
                // Stand-in for the structure checkpoint.
                fs::write(w.checkpoint_path(seq), b"checkpoint-stub").unwrap();
                w.rotate(seq).unwrap();
                rotations.push(seq);
            }
        }
        assert!(rotations.len() >= 3, "rotate_bytes=64 should rotate often");
        let (checkpoints, segments) = scan_dir(&dir).unwrap();
        assert_eq!(checkpoints.len(), 2, "prunes to keep_checkpoints");
        let oldest_kept = checkpoints[0].0;
        // Every surviving segment still covers live ground.
        for w2 in segments.windows(2) {
            assert!(w2[1].0 > oldest_kept + 1, "covered segment not pruned");
        }
        assert!(!segments.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_validation() {
        let mut cfg = WalConfig::new("/tmp/x");
        assert!(cfg.check().is_ok());
        cfg.keep_checkpoints = 0;
        assert!(cfg.check().is_err());
        let mut cfg = WalConfig::new("/tmp/x");
        cfg.fsync = FsyncPolicy::EveryN(0);
        assert!(cfg.check().is_err());
        let mut cfg = WalConfig::new("/tmp/x");
        cfg.rotate_bytes = 8;
        assert!(cfg.check().is_err());
    }
}
