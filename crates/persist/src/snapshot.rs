//! The snapshot file format: a versioned, checksummed envelope.
//!
//! Because the paper's structures are pointer-free, a checkpoint is a
//! header plus a byte copy of the backing arrays — no pointer fixup, no
//! per-node walk. This module owns the *framing*; what goes inside `meta`
//! (config + geometry) and `payload` (the raw arrays) is up to each
//! structure's [`cpma_api::Persist`] impl.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     8  magic  "CPMASNAP"
//!      8     4  format version (LE u32, currently 1)
//!     12     4  codec id (LE u32, structure-specific)
//!     16     4  meta length M (LE u32)
//!     20     8  payload length P (LE u64)
//!     28     M  meta: structure header (config, geometry, counts)
//!   28+M     8  header checksum (FNV-1a 64 over bytes [0, 28+M))
//!   36+M     P  payload: raw backing arrays, little-endian
//! 36+M+P     8  payload checksum (FNV-1a 64 over the payload)
//! ```
//!
//! Both declared lengths are validated against the actual file size
//! *before* any slicing, so a corrupted length field yields
//! [`PersistError::Truncated`] — never an over-allocation.

use std::fs;
use std::io::Write;
use std::path::Path;

use cpma_api::PersistError;

use crate::checksum::fnv1a64;

/// Magic bytes opening every snapshot file.
pub const SNAP_MAGIC: [u8; 8] = *b"CPMASNAP";

/// Highest snapshot format version this build reads and the version it
/// writes.
pub const SNAP_VERSION: u32 = 1;

/// A decoded snapshot: codec id plus the two opaque sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEnvelope {
    /// Which leaf codec wrote the payload (see `LeafStorage::CODEC_ID`
    /// in `cpma-pma`; other structures pick their own ids).
    pub codec_id: u32,
    /// Structure-specific header fields (config, geometry, counts).
    pub meta: Vec<u8>,
    /// The raw backing arrays.
    pub payload: Vec<u8>,
}

impl SnapshotEnvelope {
    /// Serialize to the on-disk byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(44 + self.meta.len() + self.payload.len());
        out.extend_from_slice(&SNAP_MAGIC);
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        out.extend_from_slice(&self.codec_id.to_le_bytes());
        out.extend_from_slice(&(self.meta.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.meta);
        let header_crc = fnv1a64(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&fnv1a64(&self.payload).to_le_bytes());
        out
    }

    /// Parse and validate the on-disk byte layout.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        if bytes.len() < 28 {
            return Err(PersistError::Truncated("snapshot header"));
        }
        let magic: [u8; 8] = bytes[0..8].try_into().unwrap();
        if magic != SNAP_MAGIC {
            return Err(PersistError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version == 0 || version > SNAP_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: SNAP_VERSION,
            });
        }
        let codec_id = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let meta_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        let payload_len = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
        // Validate declared lengths against the bytes actually present
        // before indexing anywhere (checked arithmetic: the lengths are
        // attacker-controlled until the checksum passes).
        let header_end = 28usize
            .checked_add(meta_len)
            .ok_or(PersistError::Truncated("snapshot meta"))?;
        if bytes.len() < header_end + 8 {
            return Err(PersistError::Truncated("snapshot meta"));
        }
        let payload_len = usize::try_from(payload_len)
            .map_err(|_| PersistError::Truncated("snapshot payload"))?;
        let payload_start = header_end + 8;
        let payload_end = payload_start
            .checked_add(payload_len)
            .ok_or(PersistError::Truncated("snapshot payload"))?;
        if bytes.len() < payload_end + 8 {
            return Err(PersistError::Truncated("snapshot payload"));
        }
        if bytes.len() > payload_end + 8 {
            return Err(PersistError::Corrupt(format!(
                "snapshot has {} trailing bytes",
                bytes.len() - payload_end - 8
            )));
        }
        let header_crc = u64::from_le_bytes(bytes[header_end..header_end + 8].try_into().unwrap());
        if fnv1a64(&bytes[..header_end]) != header_crc {
            return Err(PersistError::ChecksumMismatch("snapshot header"));
        }
        let payload = &bytes[payload_start..payload_end];
        let payload_crc =
            u64::from_le_bytes(bytes[payload_end..payload_end + 8].try_into().unwrap());
        if fnv1a64(payload) != payload_crc {
            return Err(PersistError::ChecksumMismatch("snapshot payload"));
        }
        Ok(Self {
            codec_id,
            meta: bytes[28..header_end].to_vec(),
            payload: payload.to_vec(),
        })
    }

    /// Write the envelope to `path` atomically: serialize to a `.tmp`
    /// sibling, fsync it, then rename over `path`. A crash mid-save
    /// leaves either the old file or the new one, never a hybrid.
    pub fn save_file(&self, path: &Path) -> Result<(), PersistError> {
        write_atomic(path, &self.to_bytes())
    }

    /// Read and validate the envelope at `path`.
    pub fn load_file(path: &Path) -> Result<Self, PersistError> {
        let bytes = fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

/// Process-shared checkpoint metrics (`persist.checkpoint.*`): every
/// atomic snapshot write in the process (whole-structure checkpoints,
/// per-shard files, manifests) funnels through [`write_atomic`], so these
/// cells see all checkpoint traffic. Counts/bytes are deterministic; the
/// `.ns` histogram is timing-derived.
struct CheckpointMetrics {
    writes: cpma_obs::Counter,
    bytes: cpma_obs::Counter,
    write_ns: cpma_obs::Histogram,
}

fn metrics() -> &'static CheckpointMetrics {
    static M: std::sync::OnceLock<CheckpointMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let r = cpma_obs::global();
        CheckpointMetrics {
            writes: r.shared_counter("persist.checkpoint.writes", cpma_obs::Unit::Count),
            bytes: r.shared_counter("persist.checkpoint.bytes", cpma_obs::Unit::Bytes),
            write_ns: r.shared_histogram("persist.checkpoint.write.ns", cpma_obs::Unit::Nanos),
        }
    })
}

/// Write `bytes` to `path` via a fsynced `.tmp` sibling and rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let m = metrics();
    let mut span = cpma_obs::span_with(&m.write_ns, "persist.checkpoint.write");
    span.set_items(bytes.len() as u64);
    m.writes.inc();
    m.bytes.add(bytes.len() as u64);
    let tmp = tmp_sibling(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "checkpoint".into());
    name.push(".tmp");
    path.with_file_name(name)
}

/// A little-endian cursor over persisted bytes; every read is
/// bounds-checked and yields [`PersistError::Truncated`] past the end.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume `n` raw bytes.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consume a LE u32.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Consume a LE u64.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Consume an f64 stored as LE bit pattern.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Error unless every byte has been consumed.
    pub fn expect_end(&self, what: &'static str) -> Result<(), PersistError> {
        if self.remaining() != 0 {
            return Err(PersistError::Corrupt(format!(
                "{what}: {} unexpected trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Append helpers for building `meta`/`payload` sections (all LE).
pub trait ByteSink {
    /// Append a LE u32.
    fn put_u32(&mut self, v: u32);
    /// Append a LE u64.
    fn put_u64(&mut self, v: u64);
    /// Append an f64 as its LE bit pattern.
    fn put_f64(&mut self, v: f64);
}

impl ByteSink for Vec<u8> {
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotEnvelope {
        SnapshotEnvelope {
            codec_id: 7,
            meta: (0u8..40).collect(),
            payload: (0u16..500).map(|v| (v % 251) as u8).collect(),
        }
    }

    #[test]
    fn roundtrip() {
        let env = sample();
        let bytes = env.to_bytes();
        assert_eq!(SnapshotEnvelope::from_bytes(&bytes).unwrap(), env);
        // Empty sections are representable.
        let empty = SnapshotEnvelope {
            codec_id: 0,
            meta: vec![],
            payload: vec![],
        };
        let b = empty.to_bytes();
        assert_eq!(SnapshotEnvelope::from_bytes(&b).unwrap(), empty);
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                SnapshotEnvelope::from_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().to_bytes();
        for n in 0..bytes.len() {
            assert!(
                SnapshotEnvelope::from_bytes(&bytes[..n]).is_err(),
                "truncation to {n} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            SnapshotEnvelope::from_bytes(&bytes),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn huge_declared_lengths_do_not_allocate() {
        // Declare a multi-exabyte payload in a 100-byte file: must fail
        // with Truncated (lengths are checked against actual size first).
        let mut bytes = sample().to_bytes();
        bytes[20..28].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            SnapshotEnvelope::from_bytes(&bytes),
            Err(PersistError::Truncated(_))
        ));
        let mut bytes2 = sample().to_bytes();
        bytes2[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            SnapshotEnvelope::from_bytes(&bytes2),
            Err(PersistError::Truncated(_))
        ));
    }

    #[test]
    fn wrong_magic_and_version() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            SnapshotEnvelope::from_bytes(&bytes),
            Err(PersistError::BadMagic { .. })
        ));
        let mut v9 = sample().to_bytes();
        v9[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            SnapshotEnvelope::from_bytes(&v9),
            Err(PersistError::UnsupportedVersion { found: 9, .. })
        ));
    }

    #[test]
    fn atomic_save_load() {
        let dir = std::env::temp_dir().join(format!("cpma-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.cpma");
        let env = sample();
        env.save_file(&path).unwrap();
        assert_eq!(SnapshotEnvelope::load_file(&path).unwrap(), env);
        // Overwrite with different contents: atomic replace.
        let env2 = SnapshotEnvelope {
            codec_id: 9,
            ..sample()
        };
        env2.save_file(&path).unwrap();
        assert_eq!(SnapshotEnvelope::load_file(&path).unwrap(), env2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn byte_reader_bounds() {
        let mut buf = Vec::new();
        buf.put_u32(7);
        buf.put_u64(1 << 40);
        buf.put_f64(1.25);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32("a").unwrap(), 7);
        assert_eq!(r.u64("b").unwrap(), 1 << 40);
        assert_eq!(r.f64("c").unwrap(), 1.25);
        assert!(r.expect_end("buf").is_ok());
        assert!(matches!(r.u32("d"), Err(PersistError::Truncated("d"))));
    }
}
