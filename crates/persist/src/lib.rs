//! # cpma-persist — snapshot checkpoints, epoch WAL, crash recovery.
//!
//! The paper's structures store everything in contiguous arrays with no
//! pointers (§3–§5) — which makes durability nearly free. A checkpoint is
//! a versioned header plus a byte copy of the backing arrays (no
//! serialization walk, no pointer fixup), and the combiner's epoch
//! structure gives a natural write-ahead-log unit: one record per epoch,
//! carrying the normalized `BatchOp` stream that epoch applied.
//!
//! Three pieces, all std-only:
//!
//! * [`snapshot`] — the checksummed, versioned snapshot envelope.
//!   Structures implement [`cpma_api::Persist`] on top of it (`Pma`/
//!   `Cpma` in `cpma-pma`; `ShardedSet`'s shard-per-file directory with a
//!   manifest in `cpma-store`).
//! * [`wal`] — segmented epoch log: length-prefixed, checksummed records
//!   with epoch sequence numbers, a [`wal::FsyncPolicy`], and
//!   size-triggered checkpoint + truncate rotation ([`wal::WalConfig`]).
//! * [`mod@recover`] — crash recovery: load the newest checkpoint that
//!   validates, replay the WAL tail with sequence-continuity checks, and
//!   truncate any torn final record. Deterministic, and oracle-checked by
//!   the kill-point tests in `crates/store/tests/persist_recovery.rs`.
//!
//! Every load path is fuzz-tested against byte flips and truncations:
//! corruption yields a typed [`cpma_api::PersistError`], never a panic,
//! and declared lengths are validated against actual file sizes before
//! any allocation.

pub mod checksum;
pub mod recover;
pub mod snapshot;
pub mod wal;

pub use cpma_api::{Persist, PersistError};
pub use recover::{recover, RecoveryReport};
pub use snapshot::SnapshotEnvelope;
pub use wal::{FsyncPolicy, WalConfig, WalWriter};
