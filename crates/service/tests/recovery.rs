//! Crash recovery for the durable service: sever the server mid-stream,
//! recover the WAL directory, restart the listener on it, and verify the
//! recovered store — over the network — against per-epoch oracles. The
//! kill-point machinery (copy the live directory, truncate at every
//! interesting byte) mirrors `cpma-store`'s `persist_recovery` suite.

use cpma_api::testkit::Rng;
use cpma_api::{BatchOp, OrderedSet, RangeSet};
use cpma_persist::{recover, FsyncPolicy, WalConfig};
use cpma_pma::Cpma;
use cpma_service::{Client, Service, ServiceConfig};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpma-service-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// The single live WAL segment (rotation is disabled here).
fn sole_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    assert_eq!(segs.len(), 1, "expected exactly one segment");
    segs.pop().unwrap()
}

fn wal_config(dir: &Path) -> WalConfig {
    let mut cfg = WalConfig::new(dir);
    cfg.rotate_bytes = u64::MAX;
    // The "crash" below is a drop (or a truncated copy of the live file),
    // so per-epoch fsync is not what is under test; Never keeps the suite
    // fast while still exercising every append.
    cfg.fsync = FsyncPolicy::Never;
    cfg
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        read_timeout: Some(Duration::from_secs(10)),
        ..ServiceConfig::default()
    }
}

/// Durable service under concurrent traffic, then a crash (drop without
/// checkpoint): recovery must equal the union of everything the clients
/// acked, a restarted listener must serve it, and traffic appended after
/// the restart must survive another recovery.
#[test]
fn durable_service_recovers_acked_traffic_after_crash() {
    const CLIENTS: u64 = 4;
    let dir = tmp_dir("traffic");

    let (mut service, _combiner, report) =
        Service::serve_durable::<Cpma>(service_config(), wal_config(&dir)).unwrap();
    assert_eq!(report.last_seq, 0);
    let addr = service.local_addr();

    // Concurrent striped clients; each tracks exactly what it acked.
    let models: Vec<BTreeSet<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut model = BTreeSet::new();
                    let mut rng = Rng::new(0x2EC0_0000 + t);
                    for _ in 0..12 {
                        let ops: Vec<BatchOp<u64>> = (0..rng.below(60) + 4)
                            .map(|_| {
                                let k = (t << 32) | rng.bits(8);
                                if rng.chance(1, 3) {
                                    BatchOp::Remove(k)
                                } else {
                                    BatchOp::Insert(k)
                                }
                            })
                            .collect();
                        for (op, ack) in ops.iter().zip(client.mutate_burst(&ops).unwrap()) {
                            let want = match *op {
                                BatchOp::Insert(k) => model.insert(k),
                                BatchOp::Remove(k) => model.remove(&k),
                            };
                            assert_eq!(ack, want);
                        }
                    }
                    model
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut expected: Vec<u64> = models.iter().flatten().copied().collect();
    expected.sort_unstable();

    // Crash: drop the service (no checkpoint was ever written — recovery
    // is a pure WAL replay).
    service.shutdown();
    drop(service);

    // Offline recovery equals the acked union.
    let (recovered, report) = recover::<u64, Cpma>(&dir).unwrap();
    assert!(report.last_seq > 0);
    assert!(!report.truncated_tail);
    assert_eq!(recovered.to_vec(), expected);

    // Restart the listener on the same directory and verify over the
    // network.
    let (mut service, _combiner, report) =
        Service::serve_durable::<Cpma>(service_config(), wal_config(&dir)).unwrap();
    assert!(report.last_seq > 0);
    let mut client = Client::connect(service.local_addr()).unwrap();
    let hits = client.contains_batch(&expected).unwrap();
    assert!(
        hits.iter().all(|&h| h),
        "recovered keys missing over network"
    );
    assert_eq!(
        client.range_sum(0, u64::MAX).unwrap(),
        expected.iter().sum::<u64>()
    );

    // Post-restart traffic must survive the next crash+recovery too.
    assert!(client.insert(u64::MAX - 1).unwrap());
    service.shutdown();
    drop(service);
    let (recovered, _) = recover::<u64, Cpma>(&dir).unwrap();
    assert!(recovered.contains(u64::MAX - 1));

    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill points mid-epoch: one client drives per-op epochs, the segment
/// length is recorded after each ack, and the log is cut at every epoch
/// boundary, one byte short of it, and mid-record. Recovery must land
/// exactly on the oracle state after the complete epochs; a restarted
/// service on the cut directory must serve that state and accept new
/// traffic.
#[test]
fn kill_points_mid_epoch_with_listener_restart() {
    let dir = tmp_dir("killpoints");
    let (mut service, _combiner, _) =
        Service::serve_durable::<Cpma>(service_config(), wal_config(&dir)).unwrap();
    let mut client = Client::connect(service.local_addr()).unwrap();

    let mut rng = Rng::new(0x4B31_5EC1);
    let mut model = BTreeSet::new();
    // states[e] = oracle after e acked ops; ends[e] = segment length then.
    let mut states: Vec<Vec<u64>> = vec![Vec::new()];
    let mut ends: Vec<u64> = vec![std::fs::metadata(sole_segment(&dir)).unwrap().len()];
    for i in 0..10 {
        let k = rng.bits(6);
        // Point round-trips: each op is its own combining epoch, hence its
        // own WAL record.
        if i % 3 == 2 {
            client.remove(k).unwrap();
            model.remove(&k);
        } else {
            client.insert(k).unwrap();
            model.insert(k);
        }
        states.push(model.iter().copied().collect());
        ends.push(std::fs::metadata(sole_segment(&dir)).unwrap().len());
    }
    service.shutdown();
    drop(service);

    let mut cuts: Vec<u64> = Vec::new();
    for e in 1..ends.len() {
        cuts.extend([ends[e], ends[e] - 1, (ends[e - 1] + ends[e]) / 2]);
    }
    let scratch = tmp_dir("killpoints-scratch");
    for (ci, &cut) in cuts.iter().enumerate() {
        copy_dir(&dir, &scratch);
        let seg = sole_segment(&scratch);
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let complete = ends.iter().filter(|&&end| end <= cut).count() - 1;
        let (recovered, report) = recover::<u64, Cpma>(&scratch).unwrap();
        assert_eq!(
            recovered.to_vec(),
            states[complete],
            "cut at byte {cut}: wrong recovered state"
        );
        assert_eq!(report.last_seq, complete as u64);

        // Every third cut additionally restarts the full service on the
        // truncated directory and verifies over the network.
        if ci % 3 == 0 {
            let (mut service, _combiner, report) =
                Service::serve_durable::<Cpma>(service_config(), wal_config(&scratch)).unwrap();
            assert_eq!(report.last_seq, complete as u64);
            let mut client = Client::connect(service.local_addr()).unwrap();
            assert_eq!(client.scan(0, 1024).unwrap(), states[complete]);
            // The restarted service keeps accepting (and logging) traffic.
            assert!(client.insert(u64::MAX - 7).unwrap());
            assert!(client.contains(u64::MAX - 7).unwrap());
            service.shutdown();
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&scratch);
}
