//! End-to-end service tests: single-connection semantics against a
//! `BTreeSet` oracle, and the concurrent-client linearizability check —
//! every acked write must be visible to that connection's subsequent
//! reads, and the final store must equal a replay of everything that was
//! acknowledged.

use cpma_api::testkit::Rng;
use cpma_api::BatchOp;
use cpma_pma::Cpma;
use cpma_service::{Client, Service, ServiceConfig, ServiceError};
use std::collections::BTreeSet;
use std::time::Duration;

fn test_config() -> ServiceConfig {
    ServiceConfig {
        read_timeout: Some(Duration::from_secs(10)),
        ..ServiceConfig::default()
    }
}

fn serve() -> (Service, std::net::SocketAddr) {
    let (service, _combiner) = Service::serve(Cpma::new(), test_config()).unwrap();
    let addr = service.local_addr();
    (service, addr)
}

/// The full store contents as a client sees them, paging through `Scan`.
fn scan_all(client: &mut Client) -> Vec<u64> {
    let mut out = Vec::new();
    let mut from = 0u64;
    loop {
        let page = client.scan(from, 4096).unwrap();
        let done = page.len() < 4096;
        let last = page.last().copied();
        out.extend(page);
        match (done, last) {
            (true, _) | (_, None) => return out,
            (false, Some(k)) if k == u64::MAX => return out,
            (false, Some(k)) => from = k + 1,
        }
    }
}

#[test]
fn point_ops_follow_oracle() {
    let (mut service, addr) = serve();
    let mut client = Client::connect(addr).unwrap();
    let mut oracle = BTreeSet::new();
    let mut rng = Rng::new(0x5E4C_0001);
    for _ in 0..600 {
        let k = rng.bits(8);
        match rng.below(3) {
            0 => assert_eq!(client.insert(k).unwrap(), oracle.insert(k), "insert {k}"),
            1 => assert_eq!(client.remove(k).unwrap(), oracle.remove(&k), "remove {k}"),
            _ => assert_eq!(
                client.contains(k).unwrap(),
                oracle.contains(&k),
                "contains {k}"
            ),
        }
    }
    assert_eq!(
        scan_all(&mut client),
        oracle.iter().copied().collect::<Vec<_>>()
    );
    service.shutdown();
}

#[test]
fn pipelined_bursts_follow_oracle() {
    let (mut service, addr) = serve();
    let mut client = Client::connect(addr).unwrap();
    let mut oracle = BTreeSet::new();
    let mut rng = Rng::new(0x5E4C_0002);
    for _ in 0..20 {
        // Bursts with deliberate same-key repeats: per-op acks must match
        // sequential application even when the server nets them into one
        // combined epoch.
        let ops: Vec<BatchOp<u64>> = (0..rng.below(500) + 1)
            .map(|_| {
                let k = rng.bits(7);
                if rng.chance(1, 3) {
                    BatchOp::Remove(k)
                } else {
                    BatchOp::Insert(k)
                }
            })
            .collect();
        let acks = client.mutate_burst(&ops).unwrap();
        for (op, ack) in ops.iter().zip(acks) {
            let want = match *op {
                BatchOp::Insert(k) => oracle.insert(k),
                BatchOp::Remove(k) => oracle.remove(&k),
            };
            assert_eq!(ack, want, "ack mismatch for {op:?}");
        }
        // Snapshot reads in the same connection observe the acked burst.
        let probes: Vec<u64> = (0..64).map(|_| rng.bits(7)).collect();
        let hits = client.contains_batch(&probes).unwrap();
        for (p, hit) in probes.iter().zip(hits) {
            assert_eq!(hit, oracle.contains(p), "snapshot read of {p}");
        }
        let sum: u64 = oracle.iter().sum();
        assert_eq!(client.range_sum(0, u64::MAX).unwrap(), sum);
    }
    assert_eq!(
        scan_all(&mut client),
        oracle.iter().copied().collect::<Vec<_>>()
    );
    service.shutdown();
}

#[test]
fn mixed_pipeline_with_interleaved_reads() {
    use cpma_service::Request;
    let (mut service, addr) = serve();
    let mut client = Client::connect(addr).unwrap();
    // One pipelined batch mixing writes and snapshot reads: the reads
    // split the combining runs, and each observes the writes before it.
    let replies = client
        .pipeline(vec![
            Request::Insert { seq: 0, key: 10 },
            Request::Insert { seq: 0, key: 20 },
            Request::RangeSum {
                seq: 0,
                lo: 0,
                hi: 100,
            },
            Request::Remove { seq: 0, key: 10 },
            Request::ContainsBatch {
                seq: 0,
                keys: vec![10, 20, 30],
            },
            Request::Scan {
                seq: 0,
                lo: 0,
                max: 10,
            },
        ])
        .unwrap();
    use cpma_service::Reply;
    assert!(matches!(replies[0], Reply::Bool { value: true, .. }));
    assert!(matches!(replies[1], Reply::Bool { value: true, .. }));
    assert!(matches!(replies[2], Reply::Sum { value: 30, .. }));
    assert!(matches!(replies[3], Reply::Bool { value: true, .. }));
    match &replies[4] {
        Reply::Bools { values, .. } => assert_eq!(values, &[false, true, false]),
        other => panic!("expected Bools, got {other:?}"),
    }
    match &replies[5] {
        Reply::Keys { keys, .. } => assert_eq!(keys, &[20]),
        other => panic!("expected Keys, got {other:?}"),
    }
    service.shutdown();
}

#[test]
fn concurrent_clients_linearizable_against_oracle() {
    const CLIENTS: u64 = 4;
    let (mut service, addr) = serve();

    // Each client owns a key stripe, so per-client oracles stay exact
    // under concurrency and the final store is their union.
    let models: Vec<BTreeSet<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                scope.spawn(move || {
                    let stripe = |k: u64| (t << 32) | k;
                    let mut client = Client::connect(addr).unwrap();
                    let mut model = BTreeSet::new();
                    let mut rng = Rng::new(0xC11E_0000 + t);
                    for round in 0..30 {
                        // A pipelined mutation burst...
                        let ops: Vec<BatchOp<u64>> = (0..rng.below(120) + 1)
                            .map(|_| {
                                let k = stripe(rng.bits(9));
                                if rng.chance(1, 3) {
                                    BatchOp::Remove(k)
                                } else {
                                    BatchOp::Insert(k)
                                }
                            })
                            .collect();
                        let acks = client.mutate_burst(&ops).unwrap();
                        for (op, ack) in ops.iter().zip(acks) {
                            let want = match *op {
                                BatchOp::Insert(k) => model.insert(k),
                                BatchOp::Remove(k) => model.remove(&k),
                            };
                            assert_eq!(ack, want, "client {t}: ack mismatch for {op:?}");
                        }
                        // ...then interleaved point ops with linearized reads.
                        for _ in 0..20 {
                            let k = stripe(rng.bits(9));
                            match rng.below(3) {
                                0 => {
                                    let ack = client.insert(k).unwrap();
                                    assert_eq!(ack, model.insert(k), "client {t}: insert {k}");
                                }
                                1 => {
                                    let ack = client.remove(k).unwrap();
                                    assert_eq!(ack, model.remove(&k), "client {t}: remove {k}");
                                }
                                _ => {
                                    let hit = client.contains(k).unwrap();
                                    assert_eq!(hit, model.contains(&k), "client {t}: contains {k}");
                                }
                            }
                        }
                        // Acked writes must be visible to this connection's
                        // snapshot reads (the combiner publishes before waking).
                        if round % 5 == 0 {
                            let probes: Vec<u64> = (0..32).map(|_| stripe(rng.bits(9))).collect();
                            let hits = client.contains_batch(&probes).unwrap();
                            for (p, hit) in probes.iter().zip(hits) {
                                assert_eq!(
                                    hit,
                                    model.contains(p),
                                    "client {t}: snapshot read of {p}"
                                );
                            }
                        }
                    }
                    model
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Final store over the network = union of what every client acked.
    let mut expected: Vec<u64> = models.iter().flatten().copied().collect();
    expected.sort_unstable();
    let mut checker = Client::connect(addr).unwrap();
    assert_eq!(scan_all(&mut checker), expected);
    service.shutdown();
}

#[test]
fn more_connections_than_workers_all_get_served() {
    let mut cfg = test_config();
    cfg.workers = 2;
    let (mut service, _) = {
        let (s, _c) = Service::serve(Cpma::new(), cfg).unwrap();
        let a = s.local_addr();
        (s, a)
    };
    let addr = service.local_addr();
    // 6 concurrent connections over 2 workers: excess connections queue
    // (backpressure) but every one is eventually served.
    std::thread::scope(|scope| {
        for t in 0u64..6 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..50 {
                    assert!(client.insert((t << 32) | i).unwrap());
                }
                assert!(client.contains((t << 32) | 49).unwrap());
            });
        }
    });
    let mut checker = Client::connect(addr).unwrap();
    assert_eq!(checker.scan(0, 1000).unwrap().len(), 300);
    service.shutdown();
}

#[test]
fn scan_is_clamped_to_server_limit() {
    let mut cfg = test_config();
    cfg.scan_limit = 10;
    let (mut service, _combiner) = Service::serve(Cpma::new(), cfg).unwrap();
    let mut client = Client::connect(service.local_addr()).unwrap();
    let ops: Vec<BatchOp<u64>> = (0..100).map(BatchOp::Insert).collect();
    client.mutate_burst(&ops).unwrap();
    // Ask for 50, get the server's cap of 10.
    assert_eq!(client.scan(0, 50).unwrap(), (0..10).collect::<Vec<u64>>());
    service.shutdown();
}

#[test]
fn config_validation_rejects_bad_knobs() {
    let cfg = ServiceConfig {
        workers: 0,
        ..ServiceConfig::default()
    };
    assert!(matches!(
        Service::serve(Cpma::new(), cfg),
        Err(ServiceError::Config(_))
    ));
    let cfg = ServiceConfig {
        scan_limit: u32::MAX, // scan reply could not fit any frame
        ..ServiceConfig::default()
    };
    assert!(matches!(
        Service::serve(Cpma::new(), cfg),
        Err(ServiceError::Config(_))
    ));
}

#[test]
fn shutdown_severs_live_connections() {
    let (mut service, addr) = serve();
    let mut client = Client::connect(addr).unwrap();
    assert!(client.insert(1).unwrap());
    service.shutdown();
    // The next call fails cleanly (no hang): the server severed the
    // connection and joined its threads.
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    assert!(client.insert(2).is_err());
}
