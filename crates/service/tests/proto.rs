//! Protocol corruption suite, mirroring the persistence layer's
//! kill-every-byte style: every truncation point, every single-byte flip,
//! oversized lengths, forged checksums, and bad bodies must each produce a
//! typed protocol error and a clean connection close — never a panic, a
//! hang, or an allocation sized by attacker-controlled bytes. After every
//! abuse the server must still serve the next well-formed connection.

use cpma_persist::checksum::fnv1a64;
use cpma_pma::Cpma;
use cpma_service::proto::{self, ProtoError, RecvError};
use cpma_service::{Client, Reply, Request, Service, ServiceConfig};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A server with a short read timeout, so half-sent frames cannot park a
/// worker for long.
fn serve_short_timeout() -> (Service, SocketAddr) {
    let cfg = ServiceConfig {
        read_timeout: Some(Duration::from_millis(200)),
        max_frame_bytes: 1 << 16,
        scan_limit: 1 << 12, // keep a full scan reply within the frame cap
        ..ServiceConfig::default()
    };
    let (service, _combiner) = Service::serve(Cpma::new(), cfg).unwrap();
    let addr = service.local_addr();
    (service, addr)
}

/// Write `bytes`, half-close, and collect every reply frame until the
/// server closes. Returns the decoded replies; panics on a reply that does
/// not parse (the server must never emit garbage).
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Vec<Reply> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut replies = Vec::new();
    loop {
        match proto::read_frame(&mut stream, 1 << 20) {
            Ok(Some(body)) => replies.push(Reply::decode_body(&body).expect("server sent garbage")),
            Ok(None) => return replies, // clean close
            Err(RecvError::Io(e)) => panic!("transport error reading reply: {e}"),
            Err(RecvError::Proto(e)) => panic!("server sent malformed frame: {e}"),
        }
    }
}

/// The server is alive iff a fresh connection round-trips a request.
fn assert_server_alive(addr: SocketAddr) {
    let mut client = Client::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    client.contains(0).unwrap();
}

fn insert_frame(seq: u64, key: u64) -> Vec<u8> {
    proto::request_frame(&Request::Insert { seq, key })
}

#[test]
fn truncation_at_every_byte_closes_cleanly() {
    let (mut service, addr) = serve_short_timeout();
    let frame = insert_frame(7, 42);
    for cut in 0..frame.len() {
        let replies = send_raw(addr, &frame[..cut]);
        if cut == 0 {
            // Nothing sent: a clean close at the frame boundary, no reply.
            assert!(replies.is_empty(), "cut 0: unexpected replies {replies:?}");
        } else {
            // Mid-frame EOF: at most one typed error reply, then close.
            assert!(replies.len() <= 1, "cut {cut}: {replies:?}");
            if let Some(rep) = replies.first() {
                assert!(
                    matches!(rep, Reply::Error { .. }),
                    "cut {cut}: expected Error, got {rep:?}"
                );
            }
        }
    }
    assert_server_alive(addr);
    service.shutdown();
}

#[test]
fn byte_flip_at_every_position_yields_typed_error() {
    let (mut service, addr) = serve_short_timeout();
    let frame = insert_frame(9, 1234);
    for pos in 0..frame.len() {
        for flip in [0x01u8, 0x80] {
            let mut bad = frame.clone();
            bad[pos] ^= flip;
            let replies = send_raw(addr, &bad);
            // Whatever byte was hit — length prefix, version, opcode, seq,
            // payload, checksum — the server must answer with errors only
            // and close; a flipped frame must never ack as a valid op.
            for rep in &replies {
                assert!(
                    matches!(rep, Reply::Error { .. }),
                    "pos {pos} flip {flip:#04x}: non-error reply {rep:?}"
                );
            }
        }
    }
    assert_server_alive(addr);
    service.shutdown();
}

#[test]
fn oversized_length_is_rejected_before_allocation() {
    let (mut service, addr) = serve_short_timeout();
    // Claim a 4 GiB body. The server (max_frame 64 KiB) must reject on the
    // prefix alone — long before 4 GiB could arrive — with the Oversize
    // code, and fast.
    let started = Instant::now();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 64]); // a little garbage after the prefix
    let replies = send_raw(addr, &bytes);
    assert_eq!(replies.len(), 1);
    match replies[0] {
        Reply::Error { code, .. } => {
            assert_eq!(code, ProtoError::Oversize { len: 0, max: 0 }.code())
        }
        ref other => panic!("expected Error, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "oversize rejection took {:?}",
        started.elapsed()
    );
    assert_server_alive(addr);
    service.shutdown();
}

#[test]
fn forged_checksum_is_rejected() {
    let (mut service, addr) = serve_short_timeout();
    let mut frame = insert_frame(3, 55);
    let n = frame.len();
    // Rewrite the checksum to a wrong-but-plausible value.
    frame[n - 8..].copy_from_slice(&0xDEAD_BEEF_u64.to_le_bytes());
    let replies = send_raw(addr, &frame);
    assert_eq!(replies.len(), 1);
    match replies[0] {
        Reply::Error { code, .. } => assert_eq!(code, ProtoError::ChecksumMismatch.code()),
        ref other => panic!("expected Error, got {other:?}"),
    }
    assert_server_alive(addr);
    service.shutdown();
}

/// Frame a raw body with a *valid* checksum (to reach the body decoder).
fn framed(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&fnv1a64(body).to_le_bytes());
    out
}

#[test]
fn bad_version_opcode_and_length_echo_seq() {
    let (mut service, addr) = serve_short_timeout();

    // Unsupported version byte.
    let mut body = proto::request_frame(&Request::Insert { seq: 11, key: 1 })[4..22].to_vec();
    body[0] = 9;
    let replies = send_raw(addr, &framed(&body));
    assert_eq!(
        replies,
        vec![Reply::Error {
            seq: 11,
            code: ProtoError::UnsupportedVersion(9).code()
        }]
    );

    // Unknown opcode; the seq survives and is echoed.
    let mut body = vec![1u8, 0xAB];
    body.extend_from_slice(&77u64.to_le_bytes());
    body.extend_from_slice(&5u64.to_le_bytes());
    let replies = send_raw(addr, &framed(&body));
    assert_eq!(
        replies,
        vec![Reply::Error {
            seq: 77,
            code: ProtoError::BadOpcode(0xAB).code()
        }]
    );

    // Insert with a short payload.
    let mut body = vec![1u8, 1];
    body.extend_from_slice(&13u64.to_le_bytes());
    body.extend_from_slice(&[1, 2, 3]); // 3 bytes where a key needs 8
    let replies = send_raw(addr, &framed(&body));
    assert_eq!(
        replies,
        vec![Reply::Error {
            seq: 13,
            code: ProtoError::BadLength { opcode: 1, len: 3 }.code()
        }]
    );

    // ContainsBatch whose count field lies about the bytes present: must
    // be BadLength (no allocation from the forged count).
    let mut body = vec![1u8, 4];
    body.extend_from_slice(&21u64.to_le_bytes());
    body.extend_from_slice(&1_000_000u32.to_le_bytes());
    body.extend_from_slice(&7u64.to_le_bytes()); // one key, not a million
    let replies = send_raw(addr, &framed(&body));
    assert_eq!(replies.len(), 1);
    assert!(matches!(
        replies[0],
        Reply::Error { seq: 21, code } if code == ProtoError::BadLength { opcode: 4, len: 12 }.code()
    ));

    // Body shorter than the header: error with seq 0 (nothing to echo).
    let replies = send_raw(addr, &framed(&[1u8, 1]));
    assert_eq!(replies.len(), 1);
    assert!(matches!(replies[0], Reply::Error { seq: 0, .. }));

    assert_server_alive(addr);
    service.shutdown();
}

#[test]
fn good_frames_before_a_bad_one_are_still_answered() {
    let (mut service, addr) = serve_short_timeout();
    // Pipeline: two valid inserts, then a checksum-corrupt frame.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&insert_frame(1, 100));
    bytes.extend_from_slice(&insert_frame(2, 200));
    let mut bad = insert_frame(3, 300);
    let n = bad.len();
    bad[n - 1] ^= 0xFF;
    bytes.extend_from_slice(&bad);

    let replies = send_raw(addr, &bytes);
    // The two good ops are acked (in order), then one error, then close.
    assert!(
        (1..=3).contains(&replies.len()),
        "unexpected reply count: {replies:?}"
    );
    assert!(
        matches!(replies.last().unwrap(), Reply::Error { .. }),
        "last reply must be the error: {replies:?}"
    );
    for rep in &replies[..replies.len() - 1] {
        assert!(matches!(rep, Reply::Bool { value: true, .. }), "{rep:?}");
    }

    // Whatever was acked is durable in the store: check over a fresh
    // connection that the acked keys are present.
    let mut client = Client::connect(addr).unwrap();
    for (i, key) in [100u64, 200].iter().enumerate() {
        if i < replies.len() - 1 {
            assert!(client.contains(*key).unwrap(), "acked key {key} missing");
        }
    }
    assert_server_alive(addr);
    service.shutdown();
}

#[test]
fn half_sent_frame_then_silence_times_out() {
    let (mut service, addr) = serve_short_timeout();
    let frame = insert_frame(5, 5);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Send half a frame and go silent — the 200 ms server read timeout
    // must free the worker (close), not hang it.
    stream.write_all(&frame[..frame.len() / 2]).unwrap();
    let started = Instant::now();
    match proto::read_frame(&mut stream, 1 << 20) {
        Ok(None) => {} // server closed cleanly
        Ok(Some(_)) => panic!("server answered a half frame"),
        Err(RecvError::Io(_)) => {} // reset also acceptable
        Err(RecvError::Proto(e)) => panic!("garbage from server: {e}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "server held a half-open connection for {:?}",
        started.elapsed()
    );
    assert_server_alive(addr);
    service.shutdown();
}

#[test]
fn connect_and_close_immediately_is_fine() {
    let (mut service, addr) = serve_short_timeout();
    for _ in 0..8 {
        drop(TcpStream::connect(addr).unwrap());
    }
    assert_server_alive(addr);
    service.shutdown();
}
