//! The wire protocol: length-prefixed, checksummed frames.
//!
//! Every message — request or reply — travels as one frame:
//!
//! ```text
//! [ len: LE u32 ][ body: len bytes ][ checksum: LE u64 ]
//! ```
//!
//! `len` counts the body only; the checksum is FNV-1a 64 of the body (the
//! same integrity code every persisted region uses — the threat model is
//! truncation and corruption, not forgery). A request body is
//!
//! ```text
//! [ version: u8 ][ opcode: u8 ][ seq: LE u64 ][ payload ]
//! ```
//!
//! and a reply body is
//!
//! ```text
//! [ version: u8 ][ kind: u8 ][ seq: LE u64 ][ payload ]
//! ```
//!
//! where `seq` echoes the request's sequence id, so a pipelined client can
//! match replies to requests positionally *and* verify the pairing.
//!
//! Decoding follows the persistence layer's doctrine: every malformed input
//! must produce a typed [`ProtoError`] — never a panic, and never an
//! allocation sized from an attacker-controlled length that the frame's
//! actual bytes do not back. The frame length is validated against the
//! configured maximum *before* the body buffer is allocated, and the
//! `ContainsBatch` element count must exactly match the bytes present.

use cpma_persist::checksum::fnv1a64;
use std::io::{self, Read};

/// The only protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default cap on a frame's body length (1 MiB ≈ 131k keys per batch).
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 1 << 20;

/// Bytes a frame adds around its body: 4-byte length + 8-byte checksum.
pub const FRAME_OVERHEAD: usize = 12;

/// Request/reply body header: version, opcode/kind, sequence id.
const BODY_HEADER: usize = 1 + 1 + 8;

mod opcode {
    pub const INSERT: u8 = 1;
    pub const REMOVE: u8 = 2;
    pub const CONTAINS: u8 = 3;
    pub const CONTAINS_BATCH: u8 = 4;
    pub const RANGE_SUM: u8 = 5;
    pub const SCAN: u8 = 6;
}

mod kind {
    pub const BOOL: u8 = 1;
    pub const BOOLS: u8 = 2;
    pub const SUM: u8 = 3;
    pub const KEYS: u8 = 4;
    pub const ERROR: u8 = 0xff;
}

/// A malformed frame or body. Each variant maps to a stable one-byte code
/// carried in [`Reply::Error`], so clients see *why* the server hung up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The stream ended inside a frame (mid-length, mid-body, or
    /// mid-checksum). The label names the region that was cut.
    Truncated(&'static str),
    /// The body checksum did not match.
    ChecksumMismatch,
    /// The length prefix exceeds the configured frame cap; rejected before
    /// any allocation.
    Oversize { len: u32, max: u32 },
    /// The body's version byte is not [`PROTOCOL_VERSION`].
    UnsupportedVersion(u8),
    /// Unknown opcode (requests) or kind (replies).
    BadOpcode(u8),
    /// The payload length is impossible for this opcode — too short, too
    /// long, or an element count that the bytes present do not back.
    BadLength { opcode: u8, len: usize },
}

impl ProtoError {
    /// Stable one-byte error code for the wire.
    pub fn code(self) -> u8 {
        match self {
            ProtoError::Truncated(_) => 1,
            ProtoError::ChecksumMismatch => 2,
            ProtoError::Oversize { .. } => 3,
            ProtoError::UnsupportedVersion(_) => 4,
            ProtoError::BadOpcode(_) => 5,
            ProtoError::BadLength { .. } => 6,
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated(what) => write!(f, "stream truncated inside {what}"),
            ProtoError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            ProtoError::Oversize { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
            ProtoError::UnsupportedVersion(v) => {
                write!(f, "protocol version {v} (supported: {PROTOCOL_VERSION})")
            }
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::BadLength { opcode, len } => {
                write!(
                    f,
                    "impossible payload length {len} for opcode {opcode:#04x}"
                )
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Receive-side failure: either the transport broke ([`io::Error`]) or the
/// peer sent bytes that do not parse ([`ProtoError`]).
#[derive(Debug)]
pub enum RecvError {
    Io(io::Error),
    Proto(ProtoError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "i/o: {e}"),
            RecvError::Proto(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

impl From<io::Error> for RecvError {
    fn from(e: io::Error) -> Self {
        RecvError::Io(e)
    }
}

impl From<ProtoError> for RecvError {
    fn from(e: ProtoError) -> Self {
        RecvError::Proto(e)
    }
}

/// One client request. `seq` is the per-connection sequence id echoed in
/// the matching reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Insert `key`; replied with `true` iff newly added. Linearized
    /// through the combiner.
    Insert { seq: u64, key: u64 },
    /// Remove `key`; replied with `true` iff it was present. Linearized.
    Remove { seq: u64, key: u64 },
    /// Linearized membership test (observes all earlier acked writes).
    Contains { seq: u64, key: u64 },
    /// Batched membership against a wait-free snapshot taken after this
    /// connection's earlier writes were acked.
    ContainsBatch { seq: u64, keys: Vec<u64> },
    /// Sum of keys in `lo..=hi` against a snapshot.
    RangeSum { seq: u64, lo: u64, hi: u64 },
    /// Up to `max` keys starting at `lo`, ascending, against a snapshot.
    /// The server additionally caps `max` at its configured scan limit.
    Scan { seq: u64, lo: u64, max: u32 },
}

impl Request {
    /// This request's sequence id.
    pub fn seq(&self) -> u64 {
        match *self {
            Request::Insert { seq, .. }
            | Request::Remove { seq, .. }
            | Request::Contains { seq, .. }
            | Request::ContainsBatch { seq, .. }
            | Request::RangeSum { seq, .. }
            | Request::Scan { seq, .. } => seq,
        }
    }

    /// Replace the sequence id (the client assigns ids at send time).
    pub fn set_seq(&mut self, new: u64) {
        match self {
            Request::Insert { seq, .. }
            | Request::Remove { seq, .. }
            | Request::Contains { seq, .. }
            | Request::ContainsBatch { seq, .. }
            | Request::RangeSum { seq, .. }
            | Request::Scan { seq, .. } => *seq = new,
        }
    }

    /// Serialize the body (header + payload); the frame wrapper is added
    /// by [`encode_frame`].
    pub fn encode_body(&self, out: &mut Vec<u8>) {
        out.push(PROTOCOL_VERSION);
        match *self {
            Request::Insert { seq, key } => {
                out.push(opcode::INSERT);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
            Request::Remove { seq, key } => {
                out.push(opcode::REMOVE);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
            Request::Contains { seq, key } => {
                out.push(opcode::CONTAINS);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
            Request::ContainsBatch { seq, ref keys } => {
                out.push(opcode::CONTAINS_BATCH);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for k in keys {
                    out.extend_from_slice(&k.to_le_bytes());
                }
            }
            Request::RangeSum { seq, lo, hi } => {
                out.push(opcode::RANGE_SUM);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            Request::Scan { seq, lo, max } => {
                out.push(opcode::SCAN);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&max.to_le_bytes());
            }
        }
    }

    /// Parse a request body (as returned by [`read_frame`]).
    pub fn decode_body(body: &[u8]) -> Result<Request, ProtoError> {
        let (op, seq, payload) = split_body(body)?;
        let fixed = |n: usize| {
            if payload.len() == n {
                Ok(())
            } else {
                Err(ProtoError::BadLength {
                    opcode: op,
                    len: payload.len(),
                })
            }
        };
        match op {
            opcode::INSERT => {
                fixed(8)?;
                Ok(Request::Insert {
                    seq,
                    key: le_u64(payload, 0),
                })
            }
            opcode::REMOVE => {
                fixed(8)?;
                Ok(Request::Remove {
                    seq,
                    key: le_u64(payload, 0),
                })
            }
            opcode::CONTAINS => {
                fixed(8)?;
                Ok(Request::Contains {
                    seq,
                    key: le_u64(payload, 0),
                })
            }
            opcode::CONTAINS_BATCH => {
                // The declared element count must exactly match the bytes
                // present: a forged count can neither over-allocate nor
                // leave trailing garbage.
                let keys = decode_u64s(op, payload)?;
                Ok(Request::ContainsBatch { seq, keys })
            }
            opcode::RANGE_SUM => {
                fixed(16)?;
                Ok(Request::RangeSum {
                    seq,
                    lo: le_u64(payload, 0),
                    hi: le_u64(payload, 8),
                })
            }
            opcode::SCAN => {
                fixed(12)?;
                Ok(Request::Scan {
                    seq,
                    lo: le_u64(payload, 0),
                    max: le_u32(payload, 8),
                })
            }
            other => Err(ProtoError::BadOpcode(other)),
        }
    }
}

/// One server reply. `seq` echoes the request it answers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Result of `Insert`/`Remove`/`Contains`.
    Bool { seq: u64, value: bool },
    /// Result of `ContainsBatch`, positional.
    Bools { seq: u64, values: Vec<bool> },
    /// Result of `RangeSum`.
    Sum { seq: u64, value: u64 },
    /// Result of `Scan`, ascending.
    Keys { seq: u64, keys: Vec<u64> },
    /// The request could not be served; `code` is [`ProtoError::code`].
    /// The server closes the connection after sending this.
    Error { seq: u64, code: u8 },
}

impl Reply {
    /// This reply's echoed sequence id.
    pub fn seq(&self) -> u64 {
        match *self {
            Reply::Bool { seq, .. }
            | Reply::Bools { seq, .. }
            | Reply::Sum { seq, .. }
            | Reply::Keys { seq, .. }
            | Reply::Error { seq, .. } => seq,
        }
    }

    /// Serialize the body (header + payload).
    pub fn encode_body(&self, out: &mut Vec<u8>) {
        out.push(PROTOCOL_VERSION);
        match *self {
            Reply::Bool { seq, value } => {
                out.push(kind::BOOL);
                out.extend_from_slice(&seq.to_le_bytes());
                out.push(value as u8);
            }
            Reply::Bools { seq, ref values } => {
                out.push(kind::BOOLS);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(values.len() as u32).to_le_bytes());
                out.extend(values.iter().map(|&b| b as u8));
            }
            Reply::Sum { seq, value } => {
                out.push(kind::SUM);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
            }
            Reply::Keys { seq, ref keys } => {
                out.push(kind::KEYS);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for k in keys {
                    out.extend_from_slice(&k.to_le_bytes());
                }
            }
            Reply::Error { seq, code } => {
                out.push(kind::ERROR);
                out.extend_from_slice(&seq.to_le_bytes());
                out.push(code);
            }
        }
    }

    /// Parse a reply body.
    pub fn decode_body(body: &[u8]) -> Result<Reply, ProtoError> {
        let (k, seq, payload) = split_body(body)?;
        let fixed = |n: usize| {
            if payload.len() == n {
                Ok(())
            } else {
                Err(ProtoError::BadLength {
                    opcode: k,
                    len: payload.len(),
                })
            }
        };
        match k {
            kind::BOOL => {
                fixed(1)?;
                Ok(Reply::Bool {
                    seq,
                    value: payload[0] != 0,
                })
            }
            kind::BOOLS => {
                if payload.len() < 4 {
                    return Err(ProtoError::BadLength {
                        opcode: k,
                        len: payload.len(),
                    });
                }
                let n = le_u32(payload, 0) as usize;
                if payload.len() - 4 != n {
                    return Err(ProtoError::BadLength {
                        opcode: k,
                        len: payload.len(),
                    });
                }
                Ok(Reply::Bools {
                    seq,
                    values: payload[4..].iter().map(|&b| b != 0).collect(),
                })
            }
            kind::SUM => {
                fixed(8)?;
                Ok(Reply::Sum {
                    seq,
                    value: le_u64(payload, 0),
                })
            }
            kind::KEYS => {
                let keys = decode_u64s(k, payload)?;
                Ok(Reply::Keys { seq, keys })
            }
            kind::ERROR => {
                fixed(1)?;
                Ok(Reply::Error {
                    seq,
                    code: payload[0],
                })
            }
            other => Err(ProtoError::BadOpcode(other)),
        }
    }
}

/// Split a body into (opcode/kind, seq, payload), checking the version.
fn split_body(body: &[u8]) -> Result<(u8, u64, &[u8]), ProtoError> {
    if body.len() < BODY_HEADER {
        return Err(ProtoError::BadLength {
            opcode: 0,
            len: body.len(),
        });
    }
    if body[0] != PROTOCOL_VERSION {
        return Err(ProtoError::UnsupportedVersion(body[0]));
    }
    Ok((body[1], le_u64(body, 2), &body[BODY_HEADER..]))
}

/// Best-effort sequence id of a body that failed to decode, for the error
/// reply. Requires only that the header bytes are present.
pub fn seq_hint(body: &[u8]) -> u64 {
    if body.len() >= BODY_HEADER {
        le_u64(body, 2)
    } else {
        0
    }
}

/// `[count: LE u32][count × LE u64]`, count validated against the bytes
/// actually present before the vector is sized.
fn decode_u64s(opcode: u8, payload: &[u8]) -> Result<Vec<u64>, ProtoError> {
    let bad = || ProtoError::BadLength {
        opcode,
        len: payload.len(),
    };
    if payload.len() < 4 {
        return Err(bad());
    }
    let n = le_u32(payload, 0) as usize;
    let rest = &payload[4..];
    if rest.len() != n.checked_mul(8).ok_or_else(bad)? {
        return Err(bad());
    }
    Ok((0..n).map(|i| le_u64(rest, i * 8)).collect())
}

fn le_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

fn le_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

/// Wrap `body` in a frame (length prefix + FNV-1a 64 checksum) appended to
/// `out`.
pub fn encode_frame(body: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&fnv1a64(body).to_le_bytes());
}

/// Convenience: encode a request as one complete frame.
pub fn request_frame(req: &Request) -> Vec<u8> {
    let mut body = Vec::with_capacity(BODY_HEADER + 16);
    req.encode_body(&mut body);
    let mut frame = Vec::with_capacity(body.len() + FRAME_OVERHEAD);
    encode_frame(&body, &mut frame);
    frame
}

/// Convenience: encode a reply as one complete frame.
pub fn reply_frame(rep: &Reply) -> Vec<u8> {
    let mut body = Vec::with_capacity(BODY_HEADER + 16);
    rep.encode_body(&mut body);
    let mut frame = Vec::with_capacity(body.len() + FRAME_OVERHEAD);
    encode_frame(&body, &mut frame);
    frame
}

/// Read one frame from `r`, verifying length cap and checksum.
///
/// Returns `Ok(None)` on a clean end-of-stream *at a frame boundary*
/// (zero bytes before the next length prefix); end-of-stream anywhere
/// inside a frame is [`ProtoError::Truncated`]. The body buffer is only
/// allocated after the length prefix passes the `max_frame` check.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Option<Vec<u8>>, RecvError> {
    let mut len_bytes = [0u8; 4];
    match read_exact_or_eof(r, &mut len_bytes)? {
        Filled::Eof => return Ok(None),
        Filled::Partial => return Err(ProtoError::Truncated("length prefix").into()),
        Filled::Full => {}
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > max_frame {
        return Err(ProtoError::Oversize {
            len,
            max: max_frame,
        }
        .into());
    }
    let mut body = vec![0u8; len as usize];
    match read_exact_or_eof(r, &mut body)? {
        Filled::Full => {}
        _ => return Err(ProtoError::Truncated("body").into()),
    }
    let mut crc = [0u8; 8];
    match read_exact_or_eof(r, &mut crc)? {
        Filled::Full => {}
        _ => return Err(ProtoError::Truncated("checksum").into()),
    }
    if u64::from_le_bytes(crc) != fnv1a64(&body) {
        return Err(ProtoError::ChecksumMismatch.into());
    }
    Ok(Some(body))
}

enum Filled {
    Full,
    Partial,
    Eof,
}

/// `read_exact` that distinguishes "zero bytes then EOF" from "some bytes
/// then EOF" — the former is a clean close, the latter a truncation.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<Filled> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Ok(if got == 0 {
                    Filled::Eof
                } else {
                    Filled::Partial
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Filled::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let frame = request_frame(&req);
        let body = read_frame(&mut &frame[..], DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(Request::decode_body(&body).unwrap(), req);
    }

    fn roundtrip_rep(rep: Reply) {
        let frame = reply_frame(&rep);
        let body = read_frame(&mut &frame[..], DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(Reply::decode_body(&body).unwrap(), rep);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Insert { seq: 7, key: 42 });
        roundtrip_req(Request::Remove {
            seq: u64::MAX,
            key: 0,
        });
        roundtrip_req(Request::Contains { seq: 0, key: 9 });
        roundtrip_req(Request::ContainsBatch {
            seq: 3,
            keys: vec![],
        });
        roundtrip_req(Request::ContainsBatch {
            seq: 3,
            keys: vec![1, u64::MAX, 5],
        });
        roundtrip_req(Request::RangeSum {
            seq: 11,
            lo: 100,
            hi: 200,
        });
        roundtrip_req(Request::Scan {
            seq: 12,
            lo: 0,
            max: 1000,
        });
    }

    #[test]
    fn reply_roundtrips() {
        roundtrip_rep(Reply::Bool {
            seq: 1,
            value: true,
        });
        roundtrip_rep(Reply::Bools {
            seq: 2,
            values: vec![true, false, true],
        });
        roundtrip_rep(Reply::Sum {
            seq: 3,
            value: u64::MAX,
        });
        roundtrip_rep(Reply::Keys {
            seq: 4,
            keys: vec![10, 20, 30],
        });
        roundtrip_rep(Reply::Error { seq: 5, code: 2 });
    }

    #[test]
    fn eof_at_boundary_is_clean() {
        assert!(read_frame(&mut &[][..], 1024).unwrap().is_none());
    }

    #[test]
    fn oversize_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut &frame[..], 1024) {
            Err(RecvError::Proto(ProtoError::Oversize { len, max })) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversize, got {other:?}"),
        }
    }

    #[test]
    fn forged_batch_count_is_bad_length() {
        // Claim 1000 keys but supply 1: must be BadLength, not a huge Vec.
        let mut body = vec![PROTOCOL_VERSION, opcode::CONTAINS_BATCH];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&1000u32.to_le_bytes());
        body.extend_from_slice(&7u64.to_le_bytes());
        assert!(matches!(
            Request::decode_body(&body),
            Err(ProtoError::BadLength { .. })
        ));
    }

    #[test]
    fn seq_hint_parses_header() {
        let mut body = Vec::new();
        Request::Insert { seq: 99, key: 1 }.encode_body(&mut body);
        assert_eq!(seq_hint(&body), 99);
        assert_eq!(seq_hint(&body[..4]), 0);
    }
}
