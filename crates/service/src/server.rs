//! The blocking TCP server: accept loop + bounded worker threads.
//!
//! ## Thread model and backpressure
//!
//! One accept thread polls a non-blocking listener and pushes accepted
//! connections onto a queue; [`ServiceConfig::workers`] worker threads pop
//! connections and serve each one to completion. The worker count is the
//! concurrency bound *and* the backpressure mechanism: when every worker is
//! busy, new connections sit accepted-but-unserved in the queue and the
//! clients behind them simply wait. No request is ever dropped; the queue
//! holds sockets (cheap), not decoded frames.
//!
//! ## Pipelining → combining
//!
//! A worker reads one frame blocking, then opportunistically drains every
//! further complete frame the client has already sent (up to
//! [`ServiceConfig::max_pipeline_ops`]). Contiguous runs of mutating /
//! linearized ops are funneled through [`Combiner::submit_many`] as **one**
//! publication — the flat-combining layer does the batching that async
//! frameworks usually fake. Snapshot reads (`ContainsBatch`, `RangeSum`,
//! `Scan`) split those runs: the pending run is submitted first, so a read
//! observes this connection's earlier acked writes (the combiner publishes
//! the post-epoch snapshot before waking any waiter), then the read runs
//! wait-free against the published `Arc` snapshot.
//!
//! ## Protocol errors
//!
//! A malformed frame gets one typed [`Reply::Error`] (echoing the sequence
//! id when the body header survived, 0 otherwise) and the connection is
//! closed. Replies for well-formed frames received before the bad one are
//! still sent first.

use crate::proto::{
    self, ProtoError, RecvError, Reply, Request, DEFAULT_MAX_FRAME_BYTES, FRAME_OVERHEAD,
};
use cpma_api::{BatchSet, ConfigError, Persist, PersistError, RangeSet};
use cpma_obs::{Counter, Gauge, Histogram, Unit};
use cpma_store::{Combiner, CombinerConfig, Op, RecoveryReport, WalConfig};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Knobs for a [`Service`]. `docs/TUNING.md` has the full rationale table.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads serving connections; also the connection concurrency
    /// bound (excess connections queue). Default 4.
    pub workers: usize,
    /// Cap on a frame's body length, enforced before the body buffer is
    /// allocated. Default [`DEFAULT_MAX_FRAME_BYTES`] (1 MiB).
    pub max_frame_bytes: u32,
    /// Per-connection read timeout; an idle or half-dead client is
    /// disconnected when it expires. `None` waits forever. Default 30 s.
    pub read_timeout: Option<Duration>,
    /// Cap on decoded requests buffered per pipeline drain (bounds worker
    /// memory per connection). Default 16384.
    pub max_pipeline_ops: usize,
    /// Server-side cap on a single `Scan`'s result count (the client's
    /// `max` is clamped to this). Default 65536 — a full reply still fits
    /// a 1 MiB frame. Default scan limit × 8 bytes must stay under
    /// `max_frame_bytes`.
    pub scan_limit: u32,
    /// Combining-window configuration for the backing [`Combiner`].
    pub combiner: CombinerConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Some(Duration::from_secs(30)),
            max_pipeline_ops: 16 * 1024,
            scan_limit: 64 * 1024,
            combiner: CombinerConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// Validate the knob set (the combiner config is checked by the
    /// combiner constructors themselves).
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::new("workers", "must be at least 1"));
        }
        if (self.max_frame_bytes as usize) < proto::FRAME_OVERHEAD + 10 {
            return Err(ConfigError::new(
                "max_frame_bytes",
                "too small to hold any request body",
            ));
        }
        if self.max_pipeline_ops == 0 {
            return Err(ConfigError::new("max_pipeline_ops", "must be at least 1"));
        }
        if self.scan_limit as u64 * 8 + FRAME_OVERHEAD as u64 + 14 > self.max_frame_bytes as u64 {
            return Err(ConfigError::new(
                "scan_limit",
                "a full scan reply would exceed max_frame_bytes",
            ));
        }
        Ok(())
    }
}

/// Anything the service can open a front door onto. Object-safe so one
/// server binary serves both the combining store and the per-op mutex
/// baseline the load harness compares it against.
pub trait Engine: Send + Sync {
    /// Apply a run of linearized ops; per-op results in submission order.
    fn submit(&self, ops: &[Op<u64>]) -> Vec<bool>;
    /// Positional membership against a current-snapshot view.
    fn contains_batch(&self, keys: &[u64]) -> Vec<bool>;
    /// Sum of keys in `lo..=hi` against a current-snapshot view.
    fn range_sum(&self, lo: u64, hi: u64) -> u64;
    /// Up to `max` keys from `lo` upward, ascending.
    fn scan(&self, lo: u64, max: usize) -> Vec<u64>;
}

/// The production engine: ops combine through [`Combiner::submit_many`],
/// reads run wait-free against the published `Arc` snapshot.
pub struct CombinerEngine<S> {
    combiner: Arc<Combiner<S>>,
}

impl<S> CombinerEngine<S> {
    pub fn new(combiner: Arc<Combiner<S>>) -> Self {
        Self { combiner }
    }
}

impl<S> Engine for CombinerEngine<S>
where
    S: BatchSet<u64> + RangeSet<u64> + Clone + Send + Sync,
{
    fn submit(&self, ops: &[Op<u64>]) -> Vec<bool> {
        self.combiner.submit_many(ops)
    }

    fn contains_batch(&self, keys: &[u64]) -> Vec<bool> {
        self.combiner.snapshot().contains_batch(keys)
    }

    fn range_sum(&self, lo: u64, hi: u64) -> u64 {
        self.combiner.snapshot().range_sum(lo..=hi)
    }

    fn scan(&self, lo: u64, max: usize) -> Vec<u64> {
        let snap = self.combiner.snapshot();
        let mut out = Vec::new();
        if max > 0 {
            snap.scan_from(lo, &mut |k| {
                out.push(k);
                out.len() < max
            });
        }
        out
    }
}

/// The baseline engine the load harness measures the combiner against: a
/// single `Mutex<S>` taken **per operation** — the conventional
/// lock-around-the-structure server. Deliberately not batch-aware.
pub struct MutexEngine<S> {
    set: Mutex<S>,
}

impl<S> MutexEngine<S> {
    pub fn new(set: S) -> Self {
        Self {
            set: Mutex::new(set),
        }
    }
}

impl<S> Engine for MutexEngine<S>
where
    S: BatchSet<u64> + RangeSet<u64> + Send,
{
    fn submit(&self, ops: &[Op<u64>]) -> Vec<bool> {
        // One lock acquisition per op — the per-op critical section is the
        // point of the baseline.
        ops.iter()
            .map(|op| {
                let mut s = self.set.lock().unwrap();
                match *op {
                    Op::Insert(k) => s.insert_batch_sorted(&[k]) == 1,
                    Op::Remove(k) => s.remove_batch_sorted(&[k]) == 1,
                    Op::Contains(k) => s.contains(k),
                }
            })
            .collect()
    }

    fn contains_batch(&self, keys: &[u64]) -> Vec<bool> {
        self.set.lock().unwrap().contains_batch(keys)
    }

    fn range_sum(&self, lo: u64, hi: u64) -> u64 {
        self.set.lock().unwrap().range_sum(lo..=hi)
    }

    fn scan(&self, lo: u64, max: usize) -> Vec<u64> {
        let s = self.set.lock().unwrap();
        let mut out = Vec::new();
        if max > 0 {
            s.scan_from(lo, &mut |k| {
                out.push(k);
                out.len() < max
            });
        }
        out
    }
}

/// Service startup/teardown failure.
#[derive(Debug)]
pub enum ServiceError {
    Io(io::Error),
    Persist(PersistError),
    Config(ConfigError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "i/o: {e}"),
            ServiceError::Persist(e) => write!(f, "persist: {e}"),
            ServiceError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<PersistError> for ServiceError {
    fn from(e: PersistError) -> Self {
        ServiceError::Persist(e)
    }
}

impl From<ConfigError> for ServiceError {
    fn from(e: ConfigError) -> Self {
        ServiceError::Config(e)
    }
}

/// Observability handles for the accept → decode → combine → reply phases.
struct Metrics {
    connections: Counter,
    frames: Counter,
    ops: Counter,
    proto_errors: Counter,
    conns_active: Gauge,
    decode_ns: Histogram,
    combine_ns: Histogram,
    reply_ns: Histogram,
}

impl Metrics {
    fn new() -> Self {
        let reg = cpma_obs::global();
        Self {
            connections: reg.shared_counter("service.connections", Unit::Count),
            frames: reg.shared_counter("service.frames", Unit::Count),
            ops: reg.shared_counter("service.ops", Unit::Count),
            proto_errors: reg.shared_counter("service.proto_errors", Unit::Count),
            conns_active: reg.shared_gauge("service.conns_active"),
            decode_ns: reg.shared_histogram("service.decode_ns", Unit::Nanos),
            combine_ns: reg.shared_histogram("service.combine_ns", Unit::Nanos),
            reply_ns: reg.shared_histogram("service.reply_ns", Unit::Nanos),
        }
    }
}

/// Accepted-connection queue between the accept thread and the workers.
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// Streams currently being served, kept as `try_clone`s so `shutdown` can
/// sever blocked reads.
struct LiveConns {
    streams: Mutex<Vec<(u64, TcpStream)>>,
    next_token: AtomicU64,
}

impl LiveConns {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.streams.lock().unwrap().push((token, clone));
        Some(token)
    }

    fn deregister(&self, token: u64) {
        self.streams.lock().unwrap().retain(|(t, _)| *t != token);
    }

    fn sever_all(&self) {
        for (_, s) in self.streams.lock().unwrap().iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

/// A running front door: accept thread + worker pool bound to a loopback
/// listener. Dropping the service (or calling [`Service::shutdown`]) stops
/// the accept loop, severs in-flight connections, and joins every thread.
pub struct Service {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    live: Arc<LiveConns>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Serve a fresh (non-durable) combining store over `set`. Returns the
    /// service and the backing combiner (for stats, snapshots, or
    /// `into_inner` after shutdown).
    pub fn serve<S>(set: S, cfg: ServiceConfig) -> Result<(Service, Arc<Combiner<S>>), ServiceError>
    where
        S: BatchSet<u64> + RangeSet<u64> + Clone + Send + Sync + 'static,
    {
        cfg.check()?;
        let combiner = Arc::new(Combiner::with_config(set, cfg.combiner.clone()));
        let engine: Arc<dyn Engine> = Arc::new(CombinerEngine::new(combiner.clone()));
        Ok((Self::serve_engine(engine, cfg)?, combiner))
    }

    /// Serve a **durable** combining store: recover from `wal`'s directory
    /// (newest checkpoint + WAL tail), then log every epoch before
    /// acknowledging it. Restarting on the same directory resumes exactly
    /// at the last acked epoch.
    pub fn serve_durable<S>(
        cfg: ServiceConfig,
        wal: WalConfig,
    ) -> Result<(Service, Arc<Combiner<S>>, RecoveryReport), ServiceError>
    where
        S: BatchSet<u64> + RangeSet<u64> + Clone + Send + Sync + Persist + 'static,
    {
        cfg.check()?;
        let (combiner, report) = Combiner::open_durable(cfg.combiner.clone(), wal)?;
        let combiner = Arc::new(combiner);
        let engine: Arc<dyn Engine> = Arc::new(CombinerEngine::new(combiner.clone()));
        Ok((Self::serve_engine(engine, cfg)?, combiner, report))
    }

    /// Serve the per-op mutex baseline (for the load harness comparison).
    pub fn serve_mutex<S>(set: S, cfg: ServiceConfig) -> Result<Service, ServiceError>
    where
        S: BatchSet<u64> + RangeSet<u64> + Send + 'static,
    {
        cfg.check()?;
        let engine: Arc<dyn Engine> = Arc::new(MutexEngine::new(set));
        Self::serve_engine(engine, cfg)
    }

    /// Serve an arbitrary [`Engine`] on an OS-assigned loopback port.
    pub fn serve_engine(
        engine: Arc<dyn Engine>,
        cfg: ServiceConfig,
    ) -> Result<Service, ServiceError> {
        cfg.check()?;
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        let live = Arc::new(LiveConns {
            streams: Mutex::new(Vec::new()),
            next_token: AtomicU64::new(0),
        });
        let metrics = Arc::new(Metrics::new());

        let accept_handle = {
            let stop = stop.clone();
            let queue = queue.clone();
            let metrics = metrics.clone();
            std::thread::Builder::new()
                .name("cpma-service-accept".into())
                .spawn(move || accept_loop(listener, stop, queue, metrics))?
        };

        let mut workers = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let stop = stop.clone();
            let queue = queue.clone();
            let live = live.clone();
            let engine = engine.clone();
            let cfg = cfg.clone();
            let metrics = metrics.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("cpma-service-worker-{w}"))
                    .spawn(move || worker_loop(stop, queue, live, engine, cfg, metrics))?,
            );
        }

        Ok(Service {
            addr,
            stop,
            queue,
            live,
            accept_handle: Some(accept_handle),
            workers,
        })
    }

    /// The bound loopback address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, sever in-flight connections, and join every thread.
    /// Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.ready.notify_all();
        self.live.sever_all();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Connections accepted but never served are dropped here.
        self.queue.queue.lock().unwrap().clear();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    metrics: Arc<Metrics>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                metrics.connections.inc();
                queue.queue.lock().unwrap().push_back(stream);
                queue.ready.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn worker_loop(
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    live: Arc<LiveConns>,
    engine: Arc<dyn Engine>,
    cfg: ServiceConfig,
    metrics: Arc<Metrics>,
) {
    loop {
        let stream = {
            let mut q = queue.queue.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    break s;
                }
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = queue
                    .ready
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap();
                q = guard;
            }
        };
        metrics.conns_active.add(1);
        let token = live.register(&stream);
        let _ = serve_conn(stream, &*engine, &cfg, &metrics);
        if let Some(t) = token {
            live.deregister(t);
        }
        metrics.conns_active.add(-1);
    }
}

/// Serve one connection to completion. `Err` is a transport failure —
/// already handled by closing; protocol errors are reported in-band.
fn serve_conn(
    stream: TcpStream,
    engine: &dyn Engine,
    cfg: &ServiceConfig,
    metrics: &Metrics,
) -> io::Result<()> {
    stream.set_read_timeout(cfg.read_timeout)?;
    stream.set_nodelay(true)?;
    let mut reader = FrameReader::new(stream);
    let mut out = Vec::new();

    loop {
        // Blocking read of the next frame (honors the read timeout).
        let first = match reader.next_blocking(cfg.max_frame_bytes) {
            Ok(Some(body)) => body,
            Ok(None) => return Ok(()), // clean close at a frame boundary
            Err(RecvError::Io(_)) => return Ok(()), // timeout / reset: close
            Err(RecvError::Proto(e)) => {
                metrics.proto_errors.inc();
                send_error(&mut reader.stream, 0, e)?;
                return Ok(());
            }
        };

        // Opportunistic pipeline drain: every complete frame the client
        // has already sent joins this batch.
        let mut bodies = vec![first];
        let (drain_err, eof) =
            reader.drain_nonblocking(cfg.max_frame_bytes, cfg.max_pipeline_ops, &mut bodies);
        metrics.frames.add(bodies.len() as u64);

        // Decode. A bad body stops the batch; the good prefix still runs.
        let mut requests = Vec::with_capacity(bodies.len());
        let mut fatal: Option<(u64, ProtoError)> = None;
        {
            let mut span = cpma_obs::span_with(&metrics.decode_ns, "service.decode");
            span.set_items(bodies.len() as u64);
            for body in &bodies {
                match Request::decode_body(body) {
                    Ok(r) => requests.push(r),
                    Err(e) => {
                        fatal = Some((proto::seq_hint(body), e));
                        break;
                    }
                }
            }
        }
        if fatal.is_none() {
            fatal = drain_err.map(|e| (0, e));
        }
        metrics.ops.add(requests.len() as u64);

        // Serve: runs of linearized ops combine into single submissions;
        // snapshot reads split the runs.
        let replies = {
            let mut span = cpma_obs::span_with(&metrics.combine_ns, "service.combine");
            span.set_items(requests.len() as u64);
            serve_requests(engine, &requests, cfg.scan_limit)
        };

        // Reply in request order, one write per batch.
        {
            let mut span = cpma_obs::span_with(&metrics.reply_ns, "service.reply");
            span.set_items(replies.len() as u64);
            out.clear();
            for rep in &replies {
                let mut body = Vec::new();
                rep.encode_body(&mut body);
                proto::encode_frame(&body, &mut out);
            }
            if let Some((seq, e)) = fatal {
                metrics.proto_errors.inc();
                let mut body = Vec::new();
                Reply::Error {
                    seq,
                    code: e.code(),
                }
                .encode_body(&mut body);
                proto::encode_frame(&body, &mut out);
            }
            reader.stream.write_all(&out)?;
        }

        if fatal.is_some() || eof {
            return Ok(());
        }
    }
}

fn send_error(stream: &mut TcpStream, seq: u64, e: ProtoError) -> io::Result<()> {
    let frame = proto::reply_frame(&Reply::Error {
        seq,
        code: e.code(),
    });
    stream.write_all(&frame)
}

/// Serve a decoded batch: accumulate `Insert`/`Remove`/`Contains` into a
/// pending run, flush the run through one [`Engine::submit`] whenever a
/// snapshot read (or the batch end) arrives. Replies are positional.
fn serve_requests(engine: &dyn Engine, requests: &[Request], scan_limit: u32) -> Vec<Reply> {
    let mut replies: Vec<Option<Reply>> = (0..requests.len()).map(|_| None).collect();
    let mut run_idx: Vec<usize> = Vec::new();
    let mut run_ops: Vec<Op<u64>> = Vec::new();

    fn flush(
        engine: &dyn Engine,
        requests: &[Request],
        replies: &mut [Option<Reply>],
        run_idx: &mut Vec<usize>,
        run_ops: &mut Vec<Op<u64>>,
    ) {
        if run_ops.is_empty() {
            return;
        }
        let results = engine.submit(run_ops);
        for (&i, value) in run_idx.iter().zip(results) {
            replies[i] = Some(Reply::Bool {
                seq: requests[i].seq(),
                value,
            });
        }
        run_idx.clear();
        run_ops.clear();
    }

    for (i, req) in requests.iter().enumerate() {
        match *req {
            Request::Insert { key, .. } => {
                run_idx.push(i);
                run_ops.push(Op::Insert(key));
            }
            Request::Remove { key, .. } => {
                run_idx.push(i);
                run_ops.push(Op::Remove(key));
            }
            Request::Contains { key, .. } => {
                run_idx.push(i);
                run_ops.push(Op::Contains(key));
            }
            Request::ContainsBatch { seq, ref keys } => {
                flush(engine, requests, &mut replies, &mut run_idx, &mut run_ops);
                replies[i] = Some(Reply::Bools {
                    seq,
                    values: engine.contains_batch(keys),
                });
            }
            Request::RangeSum { seq, lo, hi } => {
                flush(engine, requests, &mut replies, &mut run_idx, &mut run_ops);
                replies[i] = Some(Reply::Sum {
                    seq,
                    value: engine.range_sum(lo, hi),
                });
            }
            Request::Scan { seq, lo, max } => {
                flush(engine, requests, &mut replies, &mut run_idx, &mut run_ops);
                replies[i] = Some(Reply::Keys {
                    seq,
                    keys: engine.scan(lo, max.min(scan_limit) as usize),
                });
            }
        }
    }
    flush(engine, requests, &mut replies, &mut run_idx, &mut run_ops);
    replies.into_iter().map(|r| r.unwrap()).collect()
}

/// Buffered frame reader over a `TcpStream`, supporting a blocking "next
/// frame" and a non-blocking "drain whatever is already here".
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    start: usize,
}

impl FrameReader {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::with_capacity(16 * 1024),
            start: 0,
        }
    }

    /// Parse one complete frame out of the buffer, if present.
    /// `Ok(None)` means more bytes are needed.
    fn pop_frame(&mut self, max_frame: u32) -> Result<Option<Vec<u8>>, ProtoError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap());
        if len > max_frame {
            return Err(ProtoError::Oversize {
                len,
                max: max_frame,
            });
        }
        let total = 4 + len as usize + 8;
        if avail.len() < total {
            return Ok(None);
        }
        let body = avail[4..4 + len as usize].to_vec();
        let crc = u64::from_le_bytes(avail[4 + len as usize..total].try_into().unwrap());
        self.start += total;
        if self.start > 64 * 1024 || self.start == self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        if crc != cpma_persist::checksum::fnv1a64(&body) {
            return Err(ProtoError::ChecksumMismatch);
        }
        Ok(Some(body))
    }

    /// Blocking read of the next frame. `Ok(None)` on clean EOF at a
    /// frame boundary.
    fn next_blocking(&mut self, max_frame: u32) -> Result<Option<Vec<u8>>, RecvError> {
        loop {
            if let Some(frame) = self.pop_frame(max_frame)? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 16 * 1024];
            match io::Read::read(&mut self.stream, &mut chunk) {
                Ok(0) => {
                    return if self.buf.len() == self.start {
                        Ok(None)
                    } else {
                        Err(ProtoError::Truncated("frame").into())
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Non-blocking drain: pull every complete frame already buffered or
    /// readable without waiting, up to `limit` total frames in `out`.
    /// Returns a protocol error to report after serving the good prefix,
    /// and whether the stream hit EOF.
    fn drain_nonblocking(
        &mut self,
        max_frame: u32,
        limit: usize,
        out: &mut Vec<Vec<u8>>,
    ) -> (Option<ProtoError>, bool) {
        let mut eof = false;
        if self.stream.set_nonblocking(true).is_err() {
            return (None, false);
        }
        let err = 'drain: loop {
            // Parse what is buffered first.
            while out.len() < limit {
                match self.pop_frame(max_frame) {
                    Ok(Some(frame)) => out.push(frame),
                    Ok(None) => break,
                    Err(e) => break 'drain Some(e),
                }
            }
            if out.len() >= limit {
                break None;
            }
            let mut chunk = [0u8; 16 * 1024];
            match io::Read::read(&mut self.stream, &mut chunk) {
                Ok(0) => {
                    // EOF: a partial trailing frame is a truncation.
                    eof = true;
                    break if self.buf.len() != self.start {
                        Some(ProtoError::Truncated("frame"))
                    } else {
                        None
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break None;
                }
                Err(_) => {
                    eof = true;
                    break None;
                }
            }
        };
        let _ = self.stream.set_nonblocking(false);
        (err, eof)
    }
}
