//! # cpma-service — the std-only TCP front door
//!
//! A blocking TCP server that turns live network traffic into the
//! batch-parallel updates the CPMA stack is built for. Connections speak a
//! tiny length-prefixed, checksummed binary protocol ([`proto`]); decoded
//! op streams funnel through [`cpma_store::Combiner::submit_many`], so the
//! flat-combining layer — not an async runtime — does the batching, and
//! reads are served wait-free from the combiner's published `Arc`
//! snapshots. An optional durable mode logs every epoch to the WAL before
//! acknowledging it ([`Service::serve_durable`]).
//!
//! Everything is `std`-only blocking I/O: an accept loop plus a bounded
//! worker pool ([`ServiceConfig::workers`]) — the worker count is the
//! concurrency bound and the backpressure mechanism. See
//! `docs/ARCHITECTURE.md` ("The network front door") for the wire diagram
//! and thread model, and `docs/TUNING.md` for the knobs.
//!
//! ```no_run
//! use cpma_service::{Client, Service, ServiceConfig};
//!
//! let (mut service, _combiner) =
//!     Service::serve(cpma_pma::Cpma::new(), ServiceConfig::default()).unwrap();
//! let mut client = Client::connect(service.local_addr()).unwrap();
//! assert!(client.insert(42).unwrap());
//! assert!(client.contains(42).unwrap());
//! service.shutdown();
//! ```

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use proto::{ProtoError, RecvError, Reply, Request, DEFAULT_MAX_FRAME_BYTES};
pub use server::{CombinerEngine, Engine, MutexEngine, Service, ServiceConfig, ServiceError};
