//! Blocking loopback client for the service protocol.
//!
//! [`Client`] assigns per-connection sequence ids, frames requests, and
//! verifies that every reply echoes the id of the request it answers. The
//! burst methods ([`Client::pipeline`], [`Client::mutate_burst`]) write all
//! frames in one `write_all` and then read all replies — the pipelining
//! that lets the server-side combiner see the whole burst as one epoch.

use crate::proto::{self, ProtoError, RecvError, Reply, Request, DEFAULT_MAX_FRAME_BYTES};
use cpma_api::BatchOp;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport broke (connect, read, write, or a server hangup).
    Io(io::Error),
    /// The server's bytes did not parse.
    Proto(ProtoError),
    /// The server sent a typed [`Reply::Error`] (and closed).
    Server { seq: u64, code: u8 },
    /// A reply echoed the wrong sequence id.
    SeqMismatch { want: u64, got: u64 },
    /// The reply kind did not match the request (e.g. `Sum` for `Insert`).
    UnexpectedReply { seq: u64 },
    /// The server closed mid-conversation (fewer replies than requests).
    ConnectionClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Server { seq, code } => {
                write!(f, "server error code {code} for seq {seq}")
            }
            ClientError::SeqMismatch { want, got } => {
                write!(f, "reply seq {got}, expected {want}")
            }
            ClientError::UnexpectedReply { seq } => {
                write!(f, "unexpected reply kind for seq {seq}")
            }
            ClientError::ConnectionClosed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Io(e) => ClientError::Io(e),
            RecvError::Proto(e) => ClientError::Proto(e),
        }
    }
}

/// One blocking connection to a [`crate::Service`].
pub struct Client {
    stream: TcpStream,
    next_seq: u64,
    max_frame: u32,
}

impl Client {
    /// Connect to `addr` (typically [`crate::Service::local_addr`]).
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_seq: 1,
            max_frame: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Set a read timeout for replies (`None` waits forever).
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(t)
    }

    /// Insert `key`; `true` iff newly added.
    pub fn insert(&mut self, key: u64) -> Result<bool, ClientError> {
        let seq = self.take_seq();
        self.call_bool(Request::Insert { seq, key })
    }

    /// Remove `key`; `true` iff it was present.
    pub fn remove(&mut self, key: u64) -> Result<bool, ClientError> {
        let seq = self.take_seq();
        self.call_bool(Request::Remove { seq, key })
    }

    /// Linearized membership test.
    pub fn contains(&mut self, key: u64) -> Result<bool, ClientError> {
        let seq = self.take_seq();
        self.call_bool(Request::Contains { seq, key })
    }

    /// Snapshot membership for a batch of keys, positional.
    pub fn contains_batch(&mut self, keys: &[u64]) -> Result<Vec<bool>, ClientError> {
        let seq = self.take_seq();
        let reply = self.call(Request::ContainsBatch {
            seq,
            keys: keys.to_vec(),
        })?;
        match reply {
            Reply::Bools { values, .. } => Ok(values),
            other => Err(unexpected(other)),
        }
    }

    /// Snapshot sum of keys in `lo..=hi`.
    pub fn range_sum(&mut self, lo: u64, hi: u64) -> Result<u64, ClientError> {
        let seq = self.take_seq();
        let reply = self.call(Request::RangeSum { seq, lo, hi })?;
        match reply {
            Reply::Sum { value, .. } => Ok(value),
            other => Err(unexpected(other)),
        }
    }

    /// Snapshot scan: up to `max` keys from `lo` upward (the server may
    /// clamp `max` to its configured scan limit).
    pub fn scan(&mut self, lo: u64, max: u32) -> Result<Vec<u64>, ClientError> {
        let seq = self.take_seq();
        let reply = self.call(Request::Scan { seq, lo, max })?;
        match reply {
            Reply::Keys { keys, .. } => Ok(keys),
            other => Err(unexpected(other)),
        }
    }

    /// Pipeline a burst of mutations as one write: the whole burst reaches
    /// the server together, so it combines into (at most) one epoch.
    /// Per-op acks in submission order.
    pub fn mutate_burst(&mut self, ops: &[BatchOp<u64>]) -> Result<Vec<bool>, ClientError> {
        let requests: Vec<Request> = ops
            .iter()
            .map(|op| match *op {
                BatchOp::Insert(key) => Request::Insert { seq: 0, key },
                BatchOp::Remove(key) => Request::Remove { seq: 0, key },
            })
            .collect();
        let replies = self.pipeline(requests)?;
        replies
            .into_iter()
            .map(|r| match r {
                Reply::Bool { value, .. } => Ok(value),
                other => Err(unexpected(other)),
            })
            .collect()
    }

    /// Pipeline arbitrary requests: fresh sequence ids are assigned in
    /// order, all frames go out in one write, then all replies are read
    /// and their sequence echoes verified positionally.
    pub fn pipeline(&mut self, mut requests: Vec<Request>) -> Result<Vec<Reply>, ClientError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let mut wire = Vec::new();
        let mut body = Vec::new();
        for req in &mut requests {
            let seq = self.take_seq();
            req.set_seq(seq);
            body.clear();
            req.encode_body(&mut body);
            proto::encode_frame(&body, &mut wire);
        }
        self.stream.write_all(&wire)?;

        let mut replies = Vec::with_capacity(requests.len());
        for req in &requests {
            let reply = self.read_reply()?;
            if let Reply::Error { seq, code } = reply {
                return Err(ClientError::Server { seq, code });
            }
            if reply.seq() != req.seq() {
                return Err(ClientError::SeqMismatch {
                    want: req.seq(),
                    got: reply.seq(),
                });
            }
            replies.push(reply);
        }
        Ok(replies)
    }

    fn take_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    fn call(&mut self, req: Request) -> Result<Reply, ClientError> {
        self.stream.write_all(&proto::request_frame(&req))?;
        let reply = self.read_reply()?;
        if let Reply::Error { seq, code } = reply {
            return Err(ClientError::Server { seq, code });
        }
        if reply.seq() != req.seq() {
            return Err(ClientError::SeqMismatch {
                want: req.seq(),
                got: reply.seq(),
            });
        }
        Ok(reply)
    }

    fn call_bool(&mut self, req: Request) -> Result<bool, ClientError> {
        match self.call(req)? {
            Reply::Bool { value, .. } => Ok(value),
            other => Err(unexpected(other)),
        }
    }

    fn read_reply(&mut self) -> Result<Reply, ClientError> {
        match proto::read_frame(&mut self.stream, self.max_frame)? {
            Some(body) => Ok(Reply::decode_body(&body).map_err(ClientError::Proto)?),
            None => Err(ClientError::ConnectionClosed),
        }
    }
}

fn unexpected(reply: Reply) -> ClientError {
    ClientError::UnexpectedReply { seq: reply.seq() }
}
