//! Concurrency test layer for the fork-join pool.
//!
//! These tests exercise the pool's *scheduling* contracts — panic
//! propagation, nesting, sequential forcing, and real multi-thread
//! execution — rather than iterator results (the crate's unit tests cover
//! those). They force budgets with `ThreadPool::install`, which the pool
//! honors even above the machine's core count, so the suite exercises
//! real concurrency on single-core CI runners too. Under `CPMA_THREADS=1`
//! every budget is capped to one and the parallelism smoke tests skip
//! themselves — the rest of the suite then proves the sequential path.

use rayon::prelude::*;
use rayon::{current_num_threads, join, ThreadPoolBuilder};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

/// Installed budgets are process-global and concurrent `install`s are
/// documented as unsupported, but the test harness runs test functions
/// concurrently — so every test in this suite serializes on this lock.
static BUDGET_LOCK: Mutex<()> = Mutex::new(());

fn serialize_budgets() -> std::sync::MutexGuard<'static, ()> {
    // A panicking test (several here panic on purpose under catch_unwind)
    // must not poison the whole suite.
    BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` under an installed budget of `n` threads.
fn with_budget<T: Send>(n: usize, f: impl FnOnce() -> T + Send) -> T {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
        .install(f)
}

/// True when the environment allows real parallelism (a `CPMA_THREADS=1`
/// run caps every budget at one; these smoke tests then have nothing to
/// observe and skip).
fn parallelism_allowed() -> bool {
    with_budget(2, current_num_threads) >= 2
}

// ---------------------------------------------------------------------------
// Panic propagation
// ---------------------------------------------------------------------------

#[test]
fn panic_in_left_arm_propagates() {
    let _guard = serialize_budgets();
    let r = catch_unwind(AssertUnwindSafe(|| {
        with_budget(4, || join(|| panic!("left boom"), || 7))
    }));
    let payload = r.expect_err("panic must propagate");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
    assert_eq!(msg, "left boom");
}

#[test]
fn panic_in_spawned_arm_propagates() {
    let _guard = serialize_budgets();
    let r = catch_unwind(AssertUnwindSafe(|| {
        with_budget(4, || join(|| 7, || panic!("right boom")))
    }));
    let payload = r.expect_err("panic must propagate");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
    assert_eq!(msg, "right boom");
}

#[test]
fn panic_does_not_poison_the_pool() {
    let _guard = serialize_budgets();
    // A panicking join must leave the pool fully usable: workers catch job
    // panics, and the forker's budget reservation is released on unwind.
    for round in 0..20 {
        let r = catch_unwind(AssertUnwindSafe(|| {
            with_budget(4, || {
                join(
                    || {
                        if round % 2 == 0 {
                            panic!("round {round}");
                        }
                        round
                    },
                    || round + 1,
                )
            })
        }));
        assert_eq!(r.is_err(), round % 2 == 0);
    }
    // The pool still computes correct results at full fan-out afterwards.
    let total: u64 = with_budget(4, || (0..100_000u64).into_par_iter().sum());
    assert_eq!(total, (0..100_000u64).sum());
}

#[test]
fn panic_waits_for_the_other_arm() {
    let _guard = serialize_budgets();
    if !parallelism_allowed() {
        // On the sequential path a left-arm panic skips the right arm
        // entirely (exactly like rayon dropping an unstolen job), so there
        // is nothing to wait for.
        eprintln!("skipping: thread budget capped at 1 (CPMA_THREADS=1?)");
        return;
    }
    // A *stolen* arm must run to completion before the panic unwinds past
    // the join (it may borrow the caller's stack). The left arm waits
    // until the right arm has demonstrably started on a worker before
    // panicking, so the join cannot take the drop-unstolen shortcut.
    let started = AtomicBool::new(false);
    let finished = AtomicBool::new(false);
    let r = catch_unwind(AssertUnwindSafe(|| {
        with_budget(4, || {
            join(
                || {
                    let deadline = Instant::now() + Duration::from_secs(30);
                    while !started.load(Ordering::SeqCst) {
                        assert!(
                            Instant::now() < deadline,
                            "pool provided no second thread within 30s"
                        );
                        std::thread::yield_now();
                    }
                    panic!("early")
                },
                || {
                    started.store(true, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(50));
                    finished.store(true, Ordering::SeqCst);
                },
            )
        })
    }));
    assert!(r.is_err());
    assert!(
        finished.load(Ordering::SeqCst),
        "join unwound before the stolen arm completed"
    );
}

#[test]
fn panic_skips_the_unstolen_arm_on_the_sequential_path() {
    let _guard = serialize_budgets();
    // Budget 1 never forks, so a left-arm panic means the right arm is
    // never executed — the same semantics rayon has for a job that was
    // never stolen, and the parallel path's reclaim shortcut mirrors it.
    let ran = AtomicBool::new(false);
    let r = catch_unwind(AssertUnwindSafe(|| {
        with_budget(1, || {
            join(|| panic!("solo"), || ran.store(true, Ordering::SeqCst))
        })
    }));
    assert!(r.is_err());
    assert!(
        !ran.load(Ordering::SeqCst),
        "unstolen arm must be dropped, not run, after a panic"
    );
}

// ---------------------------------------------------------------------------
// Nesting
// ---------------------------------------------------------------------------

#[test]
fn nested_joins_inside_workers_do_not_deadlock() {
    let _guard = serialize_budgets();
    // A full binary fork tree: inner joins run from inside pool workers,
    // which must help (run queued jobs) while waiting rather than block.
    fn tree_sum(lo: u64, hi: u64) -> u64 {
        if hi - lo <= 64 {
            (lo..hi).sum()
        } else {
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| tree_sum(lo, mid), || tree_sum(mid, hi));
            a + b
        }
    }
    let got = with_budget(8, || tree_sum(0, 1 << 16));
    assert_eq!(got, (0u64..1 << 16).sum());
}

#[test]
fn deep_sequential_spine_of_joins() {
    let _guard = serialize_budgets();
    // Chain of joins (right arm trivial): exercises fork/reclaim pressure
    // without a balanced tree's natural throttling.
    fn spine(depth: usize) -> usize {
        if depth == 0 {
            return 0;
        }
        let (a, b) = join(|| spine(depth - 1), || 1usize);
        a + b
    }
    assert_eq!(with_budget(4, || spine(2000)), 2000);
}

#[test]
fn concurrent_external_callers_share_the_pool() {
    let _guard = serialize_budgets();
    // Several OS threads hammer the global pool at once; every caller must
    // get its own correct result. One budget installed around the whole
    // scope (concurrent installs are unsupported; concurrent *callers*
    // under one budget are the normal case).
    let results: Vec<u64> = with_budget(3, || {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8u64)
                .map(|t| {
                    s.spawn(move || (0..50_000u64).into_par_iter().map(|x| x ^ t).sum::<u64>())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    });
    for (t, got) in results.into_iter().enumerate() {
        let want: u64 = (0..50_000u64).map(|x| x ^ t as u64).sum();
        assert_eq!(got, want, "caller {t}");
    }
}

// ---------------------------------------------------------------------------
// Sequential forcing
// ---------------------------------------------------------------------------

#[test]
fn install_one_forces_the_sequential_path() {
    let _guard = serialize_budgets();
    // Budget 1: no forks — every closure runs on the calling thread.
    // (`CPMA_THREADS=1` forces the same path by capping every budget to 1;
    // the CI matrix runs this whole suite under it.)
    let caller = std::thread::current().id();
    let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
    with_budget(1, || {
        assert_eq!(current_num_threads(), 1);
        let (a, b) = join(
            || std::thread::current().id(),
            || std::thread::current().id(),
        );
        assert_eq!(a, caller);
        assert_eq!(b, caller);
        (0..10_000u64).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
    });
    let ids = ids.into_inner().unwrap();
    assert_eq!(ids.len(), 1, "budget 1 must not fan out");
    assert!(ids.contains(&caller));
}

#[test]
fn install_nests_and_restores_on_unwind() {
    let _guard = serialize_budgets();
    with_budget(4, || {
        let outer = current_num_threads();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            with_budget(1, || -> () {
                assert_eq!(current_num_threads(), 1);
                panic!("unwind out of the inner install");
            })
        }));
        assert_eq!(
            current_num_threads(),
            outer,
            "installed budget must be restored on unwind"
        );
    });
}

// ---------------------------------------------------------------------------
// Real parallelism smoke tests
// ---------------------------------------------------------------------------

#[test]
fn join_runs_arms_on_two_threads_when_allowed() {
    let _guard = serialize_budgets();
    if !parallelism_allowed() {
        eprintln!("skipping: thread budget capped at 1 (CPMA_THREADS=1?)");
        return;
    }
    // Rendezvous: each arm records its thread and waits (with a deadline)
    // for the other. Success is only possible if the two arms ran
    // concurrently — i.e. on two distinct threads.
    let a_ready = AtomicBool::new(false);
    let b_ready = AtomicBool::new(false);
    let rendezvous = |mine: &AtomicBool, other: &AtomicBool| {
        mine.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(30);
        while !other.load(Ordering::SeqCst) {
            assert!(
                Instant::now() < deadline,
                "pool provided no second thread within 30s"
            );
            std::thread::yield_now();
        }
        std::thread::current().id()
    };
    let (ta, tb) = with_budget(2, || {
        join(
            || rendezvous(&a_ready, &b_ready),
            || rendezvous(&b_ready, &a_ready),
        )
    });
    assert_ne!(ta, tb, "concurrent arms must be on distinct threads");
}

#[test]
fn par_iter_observes_multiple_threads_when_allowed() {
    let _guard = serialize_budgets();
    if !parallelism_allowed() {
        eprintln!("skipping: thread budget capped at 1 (CPMA_THREADS=1?)");
        return;
    }
    // Block inside leaves until at least two distinct threads have checked
    // in, so the observation cannot be defeated by one thread finishing
    // everything first. With a budget of 4 and >= 4 leaves this cannot
    // starve: a leaf only waits while every other leaf is still queued,
    // and queued leaves are claimable by the lazily-spawned workers.
    let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
    let seen_two = AtomicBool::new(false);
    with_budget(4, || {
        (0..64u64).into_par_iter().with_min_len(1).for_each(|_| {
            let n = {
                let mut g = ids.lock().unwrap();
                g.insert(std::thread::current().id());
                g.len()
            };
            if n >= 2 {
                seen_two.store(true, Ordering::SeqCst);
            }
            let deadline = Instant::now() + Duration::from_secs(30);
            while !seen_two.load(Ordering::SeqCst) {
                assert!(
                    Instant::now() < deadline,
                    "pool provided no second thread within 30s"
                );
                std::thread::yield_now();
            }
        })
    });
    assert!(ids.into_inner().unwrap().len() >= 2);
}

#[test]
fn results_are_identical_across_budgets() {
    let _guard = serialize_budgets();
    // The scheduling contract behind the workspace's determinism tests:
    // terminals are order-preserving, so any budget gives bit-identical
    // results.
    let input: Vec<u64> = (0..100_000u64)
        .map(|x| x.wrapping_mul(0x9E3779B97F4A7C15) >> 24)
        .collect();
    let runs: Vec<(Vec<u64>, u64, usize)> = [1usize, 2, 8]
        .into_iter()
        .map(|t| {
            with_budget(t, || {
                let mapped: Vec<u64> = input.par_iter().map(|&x| x >> 7).collect();
                let sum: u64 = input.par_iter().copied().sum();
                let odd = input.par_iter().filter(|&&x| x % 2 == 1).count();
                (mapped, sum, odd)
            })
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
}

#[test]
fn par_sort_agrees_across_budgets() {
    let _guard = serialize_budgets();
    let input: Vec<u64> = (0..200_000u64)
        .map(|x| x.wrapping_mul(0xD1B54A32D192ED03) >> 8)
        .collect();
    let mut serial = input.clone();
    with_budget(1, || serial.par_sort_unstable());
    let mut parallel = input.clone();
    with_budget(8, || parallel.par_sort_unstable());
    assert_eq!(serial, parallel);
    let mut std_sorted = input;
    std_sorted.sort_unstable();
    assert_eq!(serial, std_sorted);
}

#[test]
fn spawn_count_stays_within_budget() {
    let _guard = serialize_budgets();
    // While running under budget B, the number of threads concurrently
    // inside leaf closures must never exceed B.
    const BUDGET: usize = 3;
    let live = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    with_budget(BUDGET, || {
        (0..256u64).into_par_iter().with_min_len(1).for_each(|_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_micros(200));
            live.fetch_sub(1, Ordering::SeqCst);
        })
    });
    assert!(
        peak.load(Ordering::SeqCst) <= BUDGET,
        "peak concurrency {} exceeded budget {BUDGET}",
        peak.load(Ordering::SeqCst)
    );
}
