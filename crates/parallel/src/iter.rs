//! Parallel iterators over splittable producers.
//!
//! [`Par`] wraps a [`Producer`] — a source that knows its number of index
//! slots and can split itself at an index. Adaptors (`map`, `filter`,
//! `enumerate`, ...) wrap the producer lazily, exactly like rayon;
//! terminals (`for_each`, `sum`, `collect`, ...) recursively split the
//! producer down to a grain size and execute the pieces with
//! [`crate::join`], merging partial results **in index order**, so every
//! terminal is deterministic at any thread count.
//!
//! Adaptor closures are stored behind `Arc` so a split can hand both
//! halves a handle without cloning the closure itself (one allocation per
//! adaptor in the chain, none per element or per split).
//!
//! `enumerate` and `zip` assume their input producer is *exact* (one item
//! per index slot — true for slices, ranges, chunks, and maps thereof, but
//! not downstream of `filter`/`filter_map`/`flat_map_iter`), same as
//! rayon's `IndexedParallelIterator` requirement, enforced there by the
//! type system and here by convention — the workspace never enumerates a
//! filtered iterator.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A splittable work source: `len` index slots, divisible at any index,
/// consumable by an in-order fold.
#[allow(clippy::len_without_is_empty)] // producers are never empty-tested
pub trait Producer: Sized + Send {
    type Item: Send;

    /// Number of index slots (exact item count for indexed sources, an
    /// upper bound downstream of filtering).
    fn len(&self) -> usize;

    /// Split into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Consume in ascending index order, threading an accumulator.
    fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(self, acc: Acc, g: G) -> Acc;
}

/// Parallel iterator: a producer plus the minimum split grain.
pub struct Par<P> {
    producer: P,
    min_len: usize,
}

pub(crate) fn par<P: Producer>(producer: P) -> Par<P> {
    Par {
        producer,
        min_len: 1,
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits (rayon's names)
// ---------------------------------------------------------------------------

/// Anything rayon would accept as `IntoParallelIterator`. Implemented for
/// integer ranges, `Vec<T>`, and `Par` itself (so adaptor arguments like
/// `zip`'s compose the same way as rayon's).
pub trait IntoParallelIterator {
    type Producer: Producer<Item = Self::Item>;
    type Item: Send;
    fn into_par_iter(self) -> Par<Self::Producer>;
}

impl<P: Producer> IntoParallelIterator for Par<P> {
    type Producer = P;
    type Item = P::Item;
    fn into_par_iter(self) -> Par<P> {
        self
    }
}

/// `c.par_iter()` — borrow a slice (or anything that derefs to one) as a
/// parallel iterator over `&T`.
pub trait IntoParallelRefIterator<'data> {
    type Producer: Producer<Item = Self::Item>;
    type Item: Send;
    fn par_iter(&'data self) -> Par<Self::Producer>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Producer = SliceProducer<'data, T>;
    type Item = &'data T;
    fn par_iter(&'data self) -> Par<SliceProducer<'data, T>> {
        par(SliceProducer(self))
    }
}

/// `c.par_iter_mut()` — borrow a slice uniquely as a parallel iterator
/// over `&mut T`.
pub trait IntoParallelRefMutIterator<'data> {
    type Producer: Producer<Item = Self::Item>;
    type Item: Send;
    fn par_iter_mut(&'data mut self) -> Par<Self::Producer>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Producer = SliceMutProducer<'data, T>;
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> Par<SliceMutProducer<'data, T>> {
        par(SliceMutProducer(self))
    }
}

// ---------------------------------------------------------------------------
// Source producers
// ---------------------------------------------------------------------------

pub struct SliceProducer<'a, T>(pub(crate) &'a [T]);

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(index);
        (SliceProducer(l), SliceProducer(r))
    }

    fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(self, acc: Acc, mut g: G) -> Acc {
        let mut acc = acc;
        for x in self.0 {
            acc = g(acc, x);
        }
        acc
    }
}

pub struct SliceMutProducer<'a, T>(pub(crate) &'a mut [T]);

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(index);
        (SliceMutProducer(l), SliceMutProducer(r))
    }

    fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(self, acc: Acc, mut g: G) -> Acc {
        let mut acc = acc;
        for x in self.0 {
            acc = g(acc, x);
        }
        acc
    }
}

/// Producer for `Range<T>` over the integer index types the workspace
/// iterates in parallel.
pub struct RangeProducer<T> {
    start: T,
    end: T,
}

macro_rules! range_producer {
    ($($t:ty),*) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                }
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.start + index as $t;
                (
                    RangeProducer { start: self.start, end: mid },
                    RangeProducer { start: mid, end: self.end },
                )
            }

            fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(self, acc: Acc, mut g: G) -> Acc {
                let mut acc = acc;
                for x in self.start..self.end {
                    acc = g(acc, x);
                }
                acc
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Producer = RangeProducer<$t>;
            type Item = $t;
            fn into_par_iter(self) -> Par<RangeProducer<$t>> {
                par(RangeProducer { start: self.start, end: self.end })
            }
        }
    )*};
}

range_producer!(u32, u64, usize);

/// Producer for an owned `Vec` (splits by moving the tail out).
pub struct VecProducer<T>(Vec<T>);

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.0.split_off(index);
        (VecProducer(self.0), VecProducer(tail))
    }

    fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(self, acc: Acc, mut g: G) -> Acc {
        let mut acc = acc;
        for x in self.0 {
            acc = g(acc, x);
        }
        acc
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Producer = VecProducer<T>;
    type Item = T;
    fn into_par_iter(self) -> Par<VecProducer<T>> {
        par(VecProducer(self))
    }
}

// ---------------------------------------------------------------------------
// Adaptor producers
// ---------------------------------------------------------------------------

pub struct MapProducer<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, F, R> Producer for MapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            MapProducer {
                base: l,
                f: self.f.clone(),
            },
            MapProducer { base: r, f: self.f },
        )
    }

    fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(self, acc: Acc, mut g: G) -> Acc {
        let f = self.f;
        self.base.fold(acc, |a, x| g(a, f(x)))
    }
}

pub struct FilterProducer<P, F> {
    base: P,
    p: Arc<F>,
}

impl<P, F> Producer for FilterProducer<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    type Item = P::Item;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FilterProducer {
                base: l,
                p: self.p.clone(),
            },
            FilterProducer { base: r, p: self.p },
        )
    }

    fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(self, acc: Acc, mut g: G) -> Acc {
        let p = self.p;
        self.base.fold(acc, |a, x| if p(&x) { g(a, x) } else { a })
    }
}

pub struct FilterMapProducer<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, F, R> Producer for FilterMapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> Option<R> + Send + Sync,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FilterMapProducer {
                base: l,
                f: self.f.clone(),
            },
            FilterMapProducer { base: r, f: self.f },
        )
    }

    fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(self, acc: Acc, mut g: G) -> Acc {
        let f = self.f;
        self.base.fold(acc, |a, x| match f(x) {
            Some(y) => g(a, y),
            None => a,
        })
    }
}

pub struct FlatMapIterProducer<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, F, U> Producer for FlatMapIterProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> U + Send + Sync,
    U: IntoIterator,
    U::Item: Send,
{
    type Item = U::Item;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FlatMapIterProducer {
                base: l,
                f: self.f.clone(),
            },
            FlatMapIterProducer { base: r, f: self.f },
        )
    }

    fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(self, acc: Acc, mut g: G) -> Acc {
        let f = self.f;
        self.base.fold(acc, |a, x| f(x).into_iter().fold(a, &mut g))
    }
}

pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            EnumerateProducer {
                base: l,
                offset: self.offset,
            },
            EnumerateProducer {
                base: r,
                offset: self.offset + index,
            },
        )
    }

    fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(self, acc: Acc, mut g: G) -> Acc {
        let mut i = self.offset;
        self.base.fold(acc, |a, x| {
            let out = g(a, (i, x));
            i += 1;
            out
        })
    }
}

pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (ZipProducer { a: al, b: bl }, ZipProducer { a: ar, b: br })
    }

    fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(mut self, mut acc: Acc, mut g: G) -> Acc {
        // Folds cannot interleave, so the right side is buffered — but in
        // bounded blocks, so a whole-producer leaf (budget 1, or tiny
        // inputs) stays O(block) extra space rather than O(n).
        const BLOCK: usize = 1024;
        loop {
            let n = self.len();
            if n == 0 {
                return acc;
            }
            let take = n.min(BLOCK);
            let (a_head, a_tail) = self.a.split_at(take);
            let (b_head, b_tail) = self.b.split_at(take);
            let bs = b_head.fold(Vec::with_capacity(take), |mut v, y| {
                v.push(y);
                v
            });
            let mut it = bs.into_iter();
            acc = a_head.fold(acc, |a, x| match it.next() {
                Some(y) => g(a, (x, y)),
                None => a,
            });
            self = ZipProducer {
                a: a_tail,
                b: b_tail,
            };
        }
    }
}

/// rayon's `map_init`: per-split scratch state, initialized once per leaf.
pub struct MapInitProducer<P, INIT, F> {
    base: P,
    init: Arc<INIT>,
    f: Arc<F>,
}

impl<P, INIT, T, F, R> Producer for MapInitProducer<P, INIT, F>
where
    P: Producer,
    INIT: Fn() -> T + Send + Sync,
    F: Fn(&mut T, P::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            MapInitProducer {
                base: l,
                init: self.init.clone(),
                f: self.f.clone(),
            },
            MapInitProducer {
                base: r,
                init: self.init,
                f: self.f,
            },
        )
    }

    fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(self, acc: Acc, mut g: G) -> Acc {
        let mut state = (self.init)();
        let f = self.f;
        self.base.fold(acc, |a, x| g(a, f(&mut state, x)))
    }
}

pub struct ClonedProducer<P>(P);

impl<'a, T, P> Producer for ClonedProducer<P>
where
    T: Clone + Send + Sync + 'a,
    P: Producer<Item = &'a T>,
{
    type Item = T;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(index);
        (ClonedProducer(l), ClonedProducer(r))
    }

    fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(self, acc: Acc, mut g: G) -> Acc {
        self.0.fold(acc, |a, x| g(a, x.clone()))
    }
}

// ---------------------------------------------------------------------------
// The execution driver
// ---------------------------------------------------------------------------

/// Recursively halve `p` down to `grain` slots, execute the leaves with
/// [`crate::join`], and combine partial results in index order.
pub(crate) fn drive<P, T, LEAF, MERGE>(p: P, grain: usize, leaf: &LEAF, merge: &MERGE) -> T
where
    P: Producer,
    T: Send,
    LEAF: Fn(P) -> T + Sync,
    MERGE: Fn(T, T) -> T + Sync,
{
    if p.len() <= grain || crate::current_num_threads() <= 1 {
        return leaf(p);
    }
    let mid = p.len() / 2;
    let (l, r) = p.split_at(mid);
    let (tl, tr) = crate::join(
        || drive(l, grain, leaf, merge),
        || drive(r, grain, leaf, merge),
    );
    merge(tl, tr)
}

/// Split grain: aim for ~4 leaves per thread so stragglers rebalance, but
/// never below the user's `with_min_len`.
pub(crate) fn grain_for(len: usize, min_len: usize) -> usize {
    let threads = crate::current_num_threads();
    (len / (4 * threads).max(1)).max(min_len).max(1)
}

// ---------------------------------------------------------------------------
// Adaptors and terminals
// ---------------------------------------------------------------------------

impl<P: Producer> Par<P> {
    // ---- adaptors (lazy, same shapes as rayon) ----

    pub fn map<R, F>(self, f: F) -> Par<MapProducer<P, F>>
    where
        F: Fn(P::Item) -> R + Send + Sync,
        R: Send,
    {
        Par {
            producer: MapProducer {
                base: self.producer,
                f: Arc::new(f),
            },
            min_len: self.min_len,
        }
    }

    pub fn filter<F>(self, p: F) -> Par<FilterProducer<P, F>>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        Par {
            producer: FilterProducer {
                base: self.producer,
                p: Arc::new(p),
            },
            min_len: self.min_len,
        }
    }

    pub fn filter_map<R, F>(self, f: F) -> Par<FilterMapProducer<P, F>>
    where
        F: Fn(P::Item) -> Option<R> + Send + Sync,
        R: Send,
    {
        Par {
            producer: FilterMapProducer {
                base: self.producer,
                f: Arc::new(f),
            },
            min_len: self.min_len,
        }
    }

    /// rayon's `flat_map_iter`: the inner iterator is a plain serial one.
    pub fn flat_map_iter<U, F>(self, f: F) -> Par<FlatMapIterProducer<P, F>>
    where
        F: Fn(P::Item) -> U + Send + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        Par {
            producer: FlatMapIterProducer {
                base: self.producer,
                f: Arc::new(f),
            },
            min_len: self.min_len,
        }
    }

    /// Pair items with their global index (input must be exact — see the
    /// module docs).
    pub fn enumerate(self) -> Par<EnumerateProducer<P>> {
        Par {
            producer: EnumerateProducer {
                base: self.producer,
                offset: 0,
            },
            min_len: self.min_len,
        }
    }

    /// Pair lockstep with another parallel iterator (both must be exact —
    /// see the module docs).
    pub fn zip<J: IntoParallelIterator>(self, other: J) -> Par<ZipProducer<P, J::Producer>> {
        Par {
            producer: ZipProducer {
                a: self.producer,
                b: other.into_par_iter().producer,
            },
            min_len: self.min_len,
        }
    }

    /// rayon's `map_init`: per-leaf scratch state.
    pub fn map_init<T, R, INIT, F>(self, init: INIT, f: F) -> Par<MapInitProducer<P, INIT, F>>
    where
        INIT: Fn() -> T + Send + Sync,
        F: Fn(&mut T, P::Item) -> R + Send + Sync,
        R: Send,
    {
        Par {
            producer: MapInitProducer {
                base: self.producer,
                init: Arc::new(init),
                f: Arc::new(f),
            },
            min_len: self.min_len,
        }
    }

    /// Lower bound on the number of slots a split may shrink to.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = self.min_len.max(min);
        self
    }

    pub fn cloned<'a, T>(self) -> Par<ClonedProducer<P>>
    where
        T: Clone + Send + Sync + 'a,
        P: Producer<Item = &'a T>,
    {
        Par {
            producer: ClonedProducer(self.producer),
            min_len: self.min_len,
        }
    }

    pub fn copied<'a, T>(self) -> Par<ClonedProducer<P>>
    where
        T: Copy + Send + Sync + 'a,
        P: Producer<Item = &'a T>,
    {
        self.cloned()
    }

    // ---- terminals (parallel, order-preserving, schedule-independent) ----

    fn run<T, LEAF, MERGE>(self, leaf: LEAF, merge: MERGE) -> T
    where
        T: Send,
        LEAF: Fn(P) -> T + Sync,
        MERGE: Fn(T, T) -> T + Sync,
    {
        let grain = grain_for(self.producer.len(), self.min_len);
        drive(self.producer, grain, &leaf, &merge)
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        self.run(|p| p.fold((), |(), x| f(x)), |(), ()| ());
    }

    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        self.run(
            |p| {
                p.fold(S::sum(std::iter::empty::<P::Item>()), |a, x| {
                    S::sum([a, S::sum(std::iter::once(x))].into_iter())
                })
            },
            |a, b| S::sum([a, b].into_iter()),
        )
    }

    pub fn count(self) -> usize {
        self.run(|p| p.fold(0usize, |a, _| a + 1), |a, b| a + b)
    }

    pub fn min(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        self.run(
            |p| {
                p.fold(None, |a: Option<P::Item>, x| match a {
                    Some(m) if m <= x => Some(m),
                    _ => Some(x),
                })
            },
            |a, b| match (a, b) {
                (Some(x), Some(y)) => Some(if x <= y { x } else { y }),
                (x, None) => x,
                (None, y) => y,
            },
        )
    }

    pub fn max(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        self.run(
            |p| {
                p.fold(None, |a: Option<P::Item>, x| match a {
                    Some(m) if m >= x => Some(m),
                    _ => Some(x),
                })
            },
            |a, b| match (a, b) {
                (Some(x), Some(y)) => Some(if x >= y { x } else { y }),
                (x, None) => x,
                (None, y) => y,
            },
        )
    }

    pub fn any<F>(self, f: F) -> bool
    where
        F: Fn(P::Item) -> bool + Send + Sync,
    {
        let found = AtomicBool::new(false);
        self.run(
            |p| {
                // Leaves that start after a hit skip their work entirely.
                if !found.load(Ordering::Relaxed) {
                    p.fold((), |(), x| {
                        if f(x) {
                            found.store(true, Ordering::Relaxed);
                        }
                    });
                }
            },
            |(), ()| (),
        );
        found.load(Ordering::Relaxed)
    }

    pub fn all<F>(self, f: F) -> bool
    where
        F: Fn(P::Item) -> bool + Send + Sync,
    {
        !self.any(move |x| !f(x))
    }

    /// rayon's two-argument reduce: fold from an identity element.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        self.run(|p| p.fold(identity(), &op), &op)
    }

    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        let parts = self.run(
            |p| {
                let mut v = Vec::with_capacity(p.len());
                p.fold((), |(), x| v.push(x));
                v
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        parts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_collect_large() {
        let v: Vec<u64> = (0..100_000u64).into_par_iter().map(|x| x * 2).collect();
        let want: Vec<u64> = (0..100_000u64).map(|x| x * 2).collect();
        assert_eq!(v, want);
    }

    #[test]
    fn filter_preserves_order() {
        let v: Vec<u64> = (0..10_000u64)
            .into_par_iter()
            .filter(|x| x % 7 == 0)
            .collect();
        let want: Vec<u64> = (0..10_000u64).filter(|x| x % 7 == 0).collect();
        assert_eq!(v, want);
    }

    #[test]
    fn zip_and_enumerate_line_up() {
        let a: Vec<u64> = (0..5_000).collect();
        let mut b = vec![0u64; 5_000];
        b.par_iter_mut()
            .zip(a.par_iter())
            .enumerate()
            .for_each(|(i, (slot, &x))| *slot = x + i as u64);
        assert!(b.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn min_max_any_all() {
        let v: Vec<u64> = (0..1_000u64).map(|x| (x * 7919) % 1000).collect();
        assert_eq!(v.par_iter().min(), v.iter().min());
        assert_eq!(v.par_iter().max(), v.iter().max());
        assert!(v.par_iter().any(|&x| x == 500));
        assert!(!v.par_iter().any(|&x| x > 1000));
        assert!(v.par_iter().all(|&x| x < 1000));
        assert_eq!(v.par_iter().copied().sum::<u64>(), v.iter().sum::<u64>());
    }

    #[test]
    fn map_init_runs_once_per_leaf() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let total: u64 = (0..10_000u64)
            .into_par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0u64
                },
                |_s, x| x,
            )
            .sum();
        assert_eq!(total, (0..10_000u64).sum());
        assert!(inits.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn vec_into_par_iter() {
        let v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v.clone().into_par_iter().map(|x| x + 1).collect();
        assert!(out.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }
}
