//! The shim's "parallel" iterator: a thin wrapper over a std iterator
//! exposing rayon's adaptor and terminal names with rayon's signatures.
//! Execution is sequential (see the crate docs for the rationale).

/// Wrapper giving a std iterator rayon's parallel-iterator vocabulary.
pub struct Par<I>(pub(crate) I);

/// `Par` is itself iterable, so it can be fed back into `zip`, `extend`,
/// and plain `for` loops (rayon's parallel iterators compose the same way).
/// The inherent rayon-shaped adaptors above take precedence over
/// `Iterator`'s homonyms during method resolution.
impl<I: Iterator> Iterator for Par<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

/// Anything rayon would accept as `IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Iter: Iterator<Item = Self::Item>;
    type Item;
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    type Item = T::Item;
    fn into_par_iter(self) -> Par<T::IntoIter> {
        Par(self.into_iter())
    }
}

/// `c.par_iter()` for any collection whose shared reference iterates.
pub trait IntoParallelRefIterator<'data> {
    type Iter: Iterator<Item = Self::Item>;
    type Item;
    fn par_iter(&'data self) -> Par<Self::Iter>;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Iter = <&'data C as IntoIterator>::IntoIter;
    type Item = <&'data C as IntoIterator>::Item;
    fn par_iter(&'data self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

/// `c.par_iter_mut()` for any collection whose unique reference iterates.
pub trait IntoParallelRefMutIterator<'data> {
    type Iter: Iterator<Item = Self::Item>;
    type Item;
    fn par_iter_mut(&'data mut self) -> Par<Self::Iter>;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Iter = <&'data mut C as IntoIterator>::IntoIter;
    type Item = <&'data mut C as IntoIterator>::Item;
    fn par_iter_mut(&'data mut self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

impl<I: Iterator> Par<I> {
    // ---- adaptors (lazy, same shapes as rayon) ----

    pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    pub fn filter<P: FnMut(&I::Item) -> bool>(self, p: P) -> Par<std::iter::Filter<I, P>> {
        Par(self.0.filter(p))
    }

    pub fn filter_map<R, F: FnMut(I::Item) -> Option<R>>(
        self,
        f: F,
    ) -> Par<std::iter::FilterMap<I, F>> {
        Par(self.0.filter_map(f))
    }

    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    pub fn zip<J: IntoParallelIterator>(self, other: J) -> Par<std::iter::Zip<I, J::Iter>> {
        Par(self.0.zip(other.into_par_iter().0))
    }

    /// rayon's `flat_map_iter`: the inner iterator is a plain serial one.
    pub fn flat_map_iter<U, F>(self, f: F) -> Par<std::iter::FlatMap<I, U, F>>
    where
        U: IntoIterator,
        F: FnMut(I::Item) -> U,
    {
        Par(self.0.flat_map(f))
    }

    /// No-op here; rayon uses it to bound splitting granularity.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// rayon's `map_init`: per-split scratch state. Sequential execution is
    /// one split, so the initializer runs once.
    pub fn map_init<T, R, INIT, F>(self, init: INIT, mut f: F) -> Par<impl Iterator<Item = R>>
    where
        INIT: FnMut() -> T,
        F: FnMut(&mut T, I::Item) -> R,
    {
        let mut init = init;
        let mut state = init();
        Par(self.0.map(move |x| f(&mut state, x)))
    }

    pub fn cloned<'a, T>(self) -> Par<std::iter::Cloned<I>>
    where
        T: Clone + 'a,
        I: Iterator<Item = &'a T>,
    {
        Par(self.0.cloned())
    }

    pub fn copied<'a, T>(self) -> Par<std::iter::Copied<I>>
    where
        T: Copy + 'a,
        I: Iterator<Item = &'a T>,
    {
        Par(self.0.copied())
    }

    // ---- terminals ----

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    pub fn any<P: FnMut(I::Item) -> bool>(mut self, p: P) -> bool {
        self.0.any(p)
    }

    pub fn all<P: FnMut(I::Item) -> bool>(mut self, p: P) -> bool {
        self.0.all(p)
    }

    /// rayon's two-argument reduce: fold from an identity element.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: FnOnce() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}
