//! Mirror of `rayon::prelude`: glob-import to get the traits in scope.

pub use crate::iter::{
    IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, Par,
};
pub use crate::slice::{ParallelSlice, ParallelSliceMut};
