//! Slice extensions: `par_chunks`, `par_chunks_mut`, `par_sort*`.

use crate::iter::Par;

pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;

    fn par_sort(&mut self)
    where
        T: Ord;

    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_unstable_by_key(f);
    }
}
