//! Slice extensions: `par_chunks`, `par_chunks_mut`, `par_sort*`.
//!
//! The chunk views are splittable producers (split indices land on chunk
//! boundaries), so chunked terminals fan out like any other indexed
//! source. The sorts are parallel merge sorts: halves sort concurrently
//! via [`crate::join`], then merge through a left-half scratch buffer
//! (`par_sort` keeps equal elements in order; the `unstable` variants use
//! the unstable sequential sort at the leaves but are observably identical
//! for the workspace's `Copy` integer keys).

use crate::iter::{par, Par, Producer};
use std::cmp::Ordering;

pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        par(ChunksProducer {
            slice: self,
            size: chunk_size,
        })
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutProducer<'_, T>>;

    fn par_sort(&mut self)
    where
        T: Ord;

    fn par_sort_by<F: Fn(&T, &T) -> Ordering + Sync>(&mut self, cmp: F);

    fn par_sort_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F);

    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        par(ChunksMutProducer {
            slice: self,
            size: chunk_size,
        })
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        par_merge_sort(self, &T::cmp, true);
    }

    // Like rayon's, the `by`/`by_key` variants without `unstable` are
    // stable sorts: equal-key elements keep their input order (what
    // `cpma_api::normalize_ops`'s last-op-wins dedup is built on).
    fn par_sort_by<F: Fn(&T, &T) -> Ordering + Sync>(&mut self, cmp: F) {
        par_merge_sort(self, &cmp, true);
    }

    fn par_sort_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F) {
        par_merge_sort(self, &|a: &T, b: &T| f(a).cmp(&f(b)), true);
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_merge_sort(self, &T::cmp, false);
    }

    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F) {
        par_merge_sort(self, &|a: &T, b: &T| f(a).cmp(&f(b)), false);
    }
}

// ---------------------------------------------------------------------------
// Chunk producers
// ---------------------------------------------------------------------------

pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(elems);
        (
            ChunksProducer {
                slice: l,
                size: self.size,
            },
            ChunksProducer {
                slice: r,
                size: self.size,
            },
        )
    }

    fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(self, acc: Acc, mut g: G) -> Acc {
        let mut acc = acc;
        for c in self.slice.chunks(self.size) {
            acc = g(acc, c);
        }
        acc
    }
}

pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(elems);
        (
            ChunksMutProducer {
                slice: l,
                size: self.size,
            },
            ChunksMutProducer {
                slice: r,
                size: self.size,
            },
        )
    }

    fn fold<Acc, G: FnMut(Acc, Self::Item) -> Acc>(self, acc: Acc, mut g: G) -> Acc {
        let mut acc = acc;
        for c in self.slice.chunks_mut(self.size) {
            acc = g(acc, c);
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// Parallel merge sort
// ---------------------------------------------------------------------------

/// Below this length (or with a budget of one thread) fall back to the
/// sequential std sort.
const SEQ_SORT_CUTOFF: usize = 4096;

fn par_merge_sort<T: Send, C: Fn(&T, &T) -> Ordering + Sync>(v: &mut [T], cmp: &C, stable: bool) {
    let leaf = leaf_size(v.len());
    sort_rec(v, cmp, stable, leaf);
}

/// Leaf segment size: ~2 leaves per thread per level keeps every worker
/// busy without drowning small inputs in forks.
fn leaf_size(len: usize) -> usize {
    let threads = crate::current_num_threads();
    (len / (2 * threads).max(1)).max(SEQ_SORT_CUTOFF)
}

fn sort_rec<T: Send, C: Fn(&T, &T) -> Ordering + Sync>(
    v: &mut [T],
    cmp: &C,
    stable: bool,
    leaf: usize,
) {
    if v.len() <= leaf || crate::current_num_threads() <= 1 {
        if stable {
            v.sort_by(cmp);
        } else {
            v.sort_unstable_by(cmp);
        }
        return;
    }
    let mid = v.len() / 2;
    {
        let (l, r) = v.split_at_mut(mid);
        crate::join(
            || sort_rec(l, cmp, stable, leaf),
            || sort_rec(r, cmp, stable, leaf),
        );
    }
    merge_halves(v, mid, cmp);
}

/// Merge `v[..mid]` and `v[mid..]` (each sorted) in place through a scratch
/// copy of the left half. Elements are moved bytewise (no clones, no
/// drops); a guard restores the un-merged remainder of the scratch on
/// unwind so a panicking comparator cannot double-drop.
fn merge_halves<T, C: Fn(&T, &T) -> Ordering>(v: &mut [T], mid: usize, cmp: &C) {
    let len = v.len();
    if mid == 0 || mid == len {
        return;
    }
    let mut scratch: Vec<T> = Vec::with_capacity(mid);
    // Tracks the state of the merge for the unwind guard: scratch[i..mid]
    // still holds live elements whose home is v[k..j].
    struct Hole<T> {
        scratch: *const T,
        dst: *mut T,
        i: usize,
        mid: usize,
        k: usize,
    }
    impl<T> Drop for Hole<T> {
        fn drop(&mut self) {
            // SAFETY: scratch[i..mid] holds exactly (mid - i) initialized
            // elements and v[k..k + (mid - i)] is the uninitialized gap.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self.scratch.add(self.i),
                    self.dst.add(self.k),
                    self.mid - self.i,
                );
            }
        }
    }
    // SAFETY: scratch's first `mid` slots receive a bitwise copy of the
    // left run; from then on those elements logically live in scratch and
    // v[..mid] is a gap that the merge fills left to right. `scratch`'s
    // length stays 0, so it never drops elements itself; the Hole guard
    // moves any leftovers back on normal exit *or* unwind.
    unsafe {
        let s = scratch.as_mut_ptr();
        let p = v.as_mut_ptr();
        std::ptr::copy_nonoverlapping(p, s, mid);
        let mut hole = Hole {
            scratch: s,
            dst: p,
            i: 0,
            mid,
            k: 0,
        };
        let mut j = mid;
        while hole.i < mid && j < len {
            // `<` (not `<=`) keeps the merge stable: ties take the left run.
            if cmp(&*p.add(j), &*s.add(hole.i)) == Ordering::Less {
                std::ptr::copy_nonoverlapping(p.add(j), p.add(hole.k), 1);
                j += 1;
            } else {
                std::ptr::copy_nonoverlapping(s.add(hole.i), p.add(hole.k), 1);
                hole.i += 1;
            }
            hole.k += 1;
        }
        // Remaining left-run elements (if any) are flushed by the guard;
        // remaining right-run elements are already in place (k == j).
        drop(hole);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrambled(n: u64) -> Vec<u64> {
        (0..n)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16)
            .collect()
    }

    #[test]
    fn par_sort_matches_std() {
        for &n in &[0u64, 1, 2, 100, 5000, 100_000] {
            let mut a = scrambled(n);
            let mut b = a.clone();
            a.par_sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn par_sort_stable_keeps_tie_order() {
        // Sort (key, payload) pairs by key only; payload order must hold.
        let mut v: Vec<(u64, usize)> = (0..50_000).map(|i| ((i as u64 * 31) % 16, i)).collect();
        let mut want = v.clone();
        want.sort_by_key(|&(k, _)| k); // std stable sort as the oracle
        par_merge_sort(
            &mut v,
            &|a: &(u64, usize), b: &(u64, usize)| a.0.cmp(&b.0),
            true,
        );
        assert_eq!(v, want);
    }

    #[test]
    fn par_sort_by_key() {
        let mut v = scrambled(20_000);
        let mut w = v.clone();
        v.par_sort_unstable_by_key(|&x| std::cmp::Reverse(x));
        w.sort_unstable_by_key(|&x| std::cmp::Reverse(x));
        assert_eq!(v, w);
    }

    #[test]
    fn par_sort_by_key_is_stable() {
        // Pairs sorted by key only: payload order within equal keys must
        // match std's stable sort (rayon's par_sort_by_key contract).
        let mut v: Vec<(u64, usize)> = (0..60_000).map(|i| ((i as u64 * 37) % 11, i)).collect();
        let mut want = v.clone();
        want.sort_by_key(|&(k, _)| k);
        v.par_sort_by_key(|&(k, _)| k);
        assert_eq!(v, want);
        let mut u: Vec<(u64, usize)> = (0..30_000).map(|i| ((i as u64 * 13) % 7, i)).collect();
        let mut want_u = u.clone();
        want_u.sort_by_key(|&(k, _)| k);
        u.par_sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(u, want_u);
    }

    #[test]
    fn par_chunks_cover_in_order() {
        let v = scrambled(10_007);
        let collected: Vec<u64> = v.par_chunks(64).flat_map_iter(|c| c.to_vec()).collect();
        assert_eq!(collected, v);
        assert_eq!(v.par_chunks(64).count(), v.len().div_ceil(64));
        let total: u64 = v.par_chunks(64).map(|c| c.iter().sum::<u64>()).sum();
        assert_eq!(total, v.iter().sum::<u64>());
    }

    #[test]
    fn par_chunks_mut_disjoint_writes() {
        let mut v = vec![0u64; 100_003];
        v.par_chunks_mut(97).enumerate().for_each(|(ci, chunk)| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = (ci * 97 + j) as u64;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }
}
