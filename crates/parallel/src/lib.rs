//! First-party parallelism shim with rayon's API surface.
//!
//! The build environment for this reproduction is offline, so the real
//! `rayon` crate cannot be fetched. This crate is a drop-in stand-in for
//! the subset of rayon's API the workspace uses, with these semantics:
//!
//! * [`join`] runs its two closures with real fork-join parallelism: the
//!   second closure is spawned onto a scoped OS thread whenever the number
//!   of shim-spawned threads is below [`current_num_threads`], and inline
//!   otherwise. Recursive joins (the tree baselines' bulk builds) therefore
//!   fan out to roughly one thread per core and no further.
//! * The parallel-iterator adaptors ([`iter::Par`]) execute **sequentially**.
//!   They preserve rayon's types and semantics (`reduce` with an identity,
//!   `flat_map_iter`, indexed `enumerate`, ...), so swapping the real rayon
//!   back in is a one-line change in the workspace manifest — no call site
//!   changes.
//! * [`ThreadPoolBuilder::build`] + [`ThreadPool::install`] bound the
//!   thread budget [`join`] sees, which is what the benchmark harness's
//!   strong-scaling sweeps rely on (`--threads 1` must mean serial).
//!
//! Every operation is semantically identical to rayon's (set aside
//! scheduling), so correctness-critical code — the PMA's shared-disjoint
//! batch phases most of all — exercises the same contracts either way.

use std::sync::atomic::{AtomicUsize, Ordering};

/// True for this shim: parallel-iterator adaptors execute sequentially
/// (only [`join`] fans out). Consumers that present thread-scaling numbers
/// check this to label their output honestly; the real rayon does not
/// export it, so remove the references when swapping rayon back in.
pub const SHIM_SEQUENTIAL_ITERATORS: bool = true;

pub mod iter;
pub mod prelude;
pub mod slice;

/// Threads the shim has live in [`join`] spawns.
static ACTIVE_SPAWNS: AtomicUsize = AtomicUsize::new(0);

/// Non-zero while inside [`ThreadPool::install`]: caps the thread budget.
static LIMIT_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The thread budget: the installed pool's size if inside
/// [`ThreadPool::install`], otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    match LIMIT_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Run both closures, potentially in parallel, and return both results.
///
/// Spawns `oper_b` on a scoped thread while the live-spawn count is under
/// the budget; otherwise runs both inline. Panics propagate like rayon's.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    // Reserve-then-check keeps the budget exact under concurrent joins (a
    // plain load would let two threads both see room for one spawn); the
    // guard releases the reservation even if a closure panics.
    struct Reservation;
    impl Drop for Reservation {
        fn drop(&mut self) {
            ACTIVE_SPAWNS.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let spawns_after = ACTIVE_SPAWNS.fetch_add(1, Ordering::Relaxed) + 1;
    // `+ 1` accounts for the calling thread itself.
    if spawns_after < current_num_threads() {
        let _reservation = Reservation; // released on return or unwind
        std::thread::scope(|s| {
            let hb = s.spawn(oper_b);
            let ra = oper_a();
            let rb = match hb.join() {
                Ok(rb) => rb,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (ra, rb)
        })
    } else {
        // Over budget: release the reservation before running inline.
        drop(Reservation);
        (oper_a(), oper_b())
    }
}

/// Builder for a [`ThreadPool`] (thread-budget handle in this shim).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Budget for [`join`] inside [`ThreadPool::install`]; 0 = all cores.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// Error type kept for API compatibility; construction cannot fail here.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A thread budget. `install` caps what [`current_num_threads`] reports
/// (and therefore how far [`join`] fans out) for the closure's duration.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with the budget capped at this pool's size. The cap is a
    /// process-global (restored on return **or unwind**); concurrent
    /// `install`s from different threads are not supported — the benchmark
    /// harness installs pools strictly sequentially.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                LIMIT_OVERRIDE.store(self.0, Ordering::SeqCst);
            }
        }
        let _restore = Restore(LIMIT_OVERRIDE.swap(self.threads, Ordering::SeqCst));
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn join_nested() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 1000 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), (0u64..100_000).sum());
    }

    #[test]
    fn install_caps_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 1));
    }

    #[test]
    fn par_iter_combinators() {
        let v = vec![1u64, 2, 3, 4, 5];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let total: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(total, 15);
        let r = (0..10u64).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 45);
        assert_eq!(v.par_iter().filter(|&&x| x % 2 == 1).count(), 3);
        let flat: Vec<u64> = v.par_iter().flat_map_iter(|&x| vec![x, x]).collect();
        assert_eq!(flat.len(), 10);
        assert_eq!(
            v.par_iter()
                .enumerate()
                .map(|(i, &x)| i as u64 + x)
                .sum::<u64>(),
            25
        );
    }

    #[test]
    fn par_sort_and_chunks() {
        let mut v = vec![5u64, 3, 1, 4, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
        let mut w = [1u64; 10];
        w.par_chunks_mut(3)
            .for_each(|c| c.iter_mut().for_each(|x| *x += 1));
        assert!(w.iter().all(|&x| x == 2));
        let mut m = vec![0u64, 1, 2];
        m.par_iter_mut().for_each(|x| *x *= 10);
        assert_eq!(m, vec![0, 10, 20]);
    }
}
