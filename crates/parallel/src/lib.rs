//! First-party parallelism engine with rayon's API surface.
//!
//! The build environment for this reproduction is offline, so the real
//! `rayon` crate cannot be fetched. This crate is a drop-in stand-in for
//! the subset of rayon's API the workspace uses — swapping real rayon back
//! in is a one-line change in the workspace `Cargo.toml`
//! (`rayon = "1"` instead of the path entry), no call-site changes — but
//! unlike a shim it really executes in parallel:
//!
//! * [`join`] forks its second closure onto a lazily-initialized, bounded
//!   thread pool ([`pool`]) and runs the first inline; while waiting it
//!   *helps* (runs other queued jobs), so nested joins from inside workers
//!   cannot deadlock. A panic on either side is captured and re-thrown to
//!   the caller; an in-flight stolen arm is always awaited first, while an
//!   arm nobody started yet is dropped unexecuted (rayon's semantics) —
//!   workers catch job panics, so the pool is never poisoned.
//! * The parallel-iterator adaptors ([`iter::Par`]) are built on
//!   splittable producers: indexed sources (slices, ranges, chunks) are
//!   recursively halved down to a grain size (`len / (4 × threads)` by
//!   default; raise it with `with_min_len`) and the pieces execute via
//!   [`join`]. All terminals are order-preserving and schedule-independent:
//!   `collect` concatenates split results in index order, integer
//!   `sum`/`reduce` results are bit-identical at any thread count.
//! * [`slice::ParallelSliceMut::par_sort_unstable`] (and friends) is a
//!   parallel merge sort: halves sort via [`join`], then merge.
//!
//! ## Thread budgets
//!
//! The number of threads a parallel region may use is, in precedence order:
//!
//! 1. the `CPMA_THREADS` environment variable, which **caps** everything in
//!    the process (`CPMA_THREADS=1` forces the fully sequential path — the
//!    determinism baseline; results are identical either way, only the
//!    schedule changes);
//! 2. the budget installed by [`ThreadPool::install`] (what the benchmark
//!    harness's strong-scaling sweeps use, like the paper's
//!    `PARLAY_NUM_THREADS`);
//! 3. [`std::thread::available_parallelism`].
//!
//! Budgets above the core count are honored (workers are spawned up to the
//! budget), which is how the concurrency tests exercise real parallelism
//! on small CI machines.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod iter;
pub mod pool;
pub mod prelude;
pub mod slice;

/// Jobs this crate currently has forked and not yet joined. Used to keep
/// the fan-out within the thread budget: a join only forks while the
/// outstanding-fork count is under the budget, and runs inline otherwise.
static ACTIVE_SPAWNS: AtomicUsize = AtomicUsize::new(0);

/// Non-zero while inside [`ThreadPool::install`]: the installed budget.
static LIMIT_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The thread budget currently in effect: the installed pool's size if
/// inside [`ThreadPool::install`], otherwise the machine's available
/// parallelism — in both cases capped by `CPMA_THREADS` if set.
pub fn current_num_threads() -> usize {
    let base = match LIMIT_OVERRIDE.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    };
    match pool::env_cap() {
        Some(cap) => base.min(cap),
        None => base,
    }
}

/// The budget outside any `install`: `CPMA_THREADS` if set, else the
/// available parallelism. Cached — this sits on the hot path (every join
/// and every split decision consults it), and `available_parallelism` is
/// a syscall.
fn default_threads() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        pool::env_cap().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// Run both closures, potentially in parallel, and return both results.
///
/// Forks `oper_b` onto the pool while the outstanding-fork count is under
/// the budget; otherwise runs both inline. Panics propagate like rayon's:
/// a stolen `oper_b` runs to completion before the payload unwinds from
/// the caller; an `oper_b` nobody started is dropped unexecuted.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let budget = current_num_threads();
    if budget <= 1 {
        return (oper_a(), oper_b());
    }
    // Reserve-then-check keeps the fan-out exact under concurrent joins (a
    // plain load would let two threads both see room for one fork); the
    // guard releases the reservation even if a closure panics.
    struct Reservation;
    impl Drop for Reservation {
        fn drop(&mut self) {
            ACTIVE_SPAWNS.fetch_sub(1, Ordering::Relaxed);
        }
    }
    // `+ 1` accounts for the calling thread itself.
    let spawns_after = ACTIVE_SPAWNS.fetch_add(1, Ordering::Relaxed) + 1;
    if spawns_after < budget {
        let _reservation = Reservation; // released on return or unwind
        pool::fork_join(oper_a, oper_b, budget)
    } else {
        // Over budget: release the reservation before running inline.
        drop(Reservation);
        (oper_a(), oper_b())
    }
}

/// Builder for a [`ThreadPool`] (thread-budget handle; the workers
/// themselves live in the process-global pool).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Budget for [`join`] inside [`ThreadPool::install`]; 0 = default
    /// (`CPMA_THREADS`, else all cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// Error type kept for API compatibility; construction cannot fail here.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A thread budget. `install` caps what [`current_num_threads`] reports
/// (and therefore how far [`join`] and the iterator terminals fan out) for
/// the closure's duration.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with the budget capped at this pool's size. The cap is a
    /// process-global (restored on return **or unwind**); concurrent
    /// `install`s from different threads are not supported — the benchmark
    /// harness installs pools strictly sequentially. (Misuse can only skew
    /// scheduling, never results: every parallel operation here is
    /// schedule-independent.)
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                LIMIT_OVERRIDE.store(self.0, Ordering::SeqCst);
            }
        }
        let _restore = Restore(LIMIT_OVERRIDE.swap(self.threads, Ordering::SeqCst));
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn join_nested() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 1000 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), (0u64..100_000).sum());
    }

    #[test]
    fn install_caps_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 1));
    }

    #[test]
    fn par_iter_combinators() {
        let v = [1u64, 2, 3, 4, 5];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let total: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(total, 15);
        let r = (0..10u64).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 45);
        assert_eq!(v.par_iter().filter(|&&x| x % 2 == 1).count(), 3);
        let flat: Vec<u64> = v.par_iter().flat_map_iter(|&x| vec![x, x]).collect();
        assert_eq!(flat.len(), 10);
        assert_eq!(
            v.par_iter()
                .enumerate()
                .map(|(i, &x)| i as u64 + x)
                .sum::<u64>(),
            25
        );
    }

    #[test]
    fn par_sort_and_chunks() {
        let mut v = vec![5u64, 3, 1, 4, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
        let mut w = [1u64; 10];
        w.par_chunks_mut(3)
            .for_each(|c| c.iter_mut().for_each(|x| *x += 1));
        assert!(w.iter().all(|&x| x == 2));
        let mut m = vec![0u64, 1, 2];
        m.par_iter_mut().for_each(|x| *x *= 10);
        assert_eq!(m, vec![0, 10, 20]);
    }
}
