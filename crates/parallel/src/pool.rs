//! The execution engine: a lazily-initialized, bounded fork-join pool.
//!
//! One process-global pool backs every [`crate::join`] and every parallel
//! iterator terminal. Design, in rayon-core's terms but much smaller:
//!
//! * **Injector queue.** A `Mutex<VecDeque<JobRef>>` + `Condvar` shared by
//!   all workers. Forked jobs are heap-allocated (`Arc<Task>`) rather than
//!   stack-referenced, which keeps reclaiming race-free: a stale queue
//!   entry for a job the forker took back is an `Arc` clone whose `run()`
//!   loses the claim CAS and does nothing.
//! * **Lazily spawned workers.** No thread is created until the first
//!   parallel fork. Workers are spawned on demand up to the *budget* in
//!   effect at fork time ([`crate::current_num_threads`]), so
//!   `ThreadPool::install(n)` with `n` above the core count still gets `n`
//!   workers (useful for exercising real concurrency on small machines).
//!   Workers are detached and park on the condvar when idle; a panicking
//!   job is caught and boxed into its task's result slot, so no job can
//!   kill a worker or poison the queue.
//! * **Helping join.** `fork_join(a, b)` enqueues `b`, runs `a` on the
//!   calling thread, then either *reclaims* `b` (if no worker picked it
//!   up, it runs inline — this is what makes the pool deadlock-free even
//!   with zero workers) or *helps*: while waiting for `b` it pops and runs
//!   other queued jobs, so a blocked joiner is never idle and nested joins
//!   from inside workers cannot deadlock the pool.
//!
//! Panics on either side propagate to the `join` caller via
//! [`std::panic::resume_unwind`]. A **stolen** job is always awaited
//! before the caller unwinds — the closure may borrow the caller's stack,
//! so the frame must not unwind while the job is live. A job nobody stole
//! is dropped unexecuted when the other side panicked (rayon's semantics,
//! and the only behavior the sequential path can have).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Hard ceiling on spawned workers, far above any sane budget; guards
/// against a runaway `CPMA_THREADS` value.
const MAX_WORKERS: usize = 1024;

/// How long a joiner parks between completion checks when the queue is
/// empty. Short enough that a lost-wakeup race costs microseconds.
const JOIN_PARK: Duration = Duration::from_micros(200);

// ---------------------------------------------------------------------------
// Thread-count configuration
// ---------------------------------------------------------------------------

/// `CPMA_THREADS` parsed once: a positive integer caps every budget in the
/// process (with `1` forcing the fully sequential path); unset, `0`, or
/// unparsable values mean "no cap".
pub(crate) fn env_cap() -> Option<usize> {
    static CAP: OnceLock<Option<usize>> = OnceLock::new();
    *CAP.get_or_init(|| parse_threads(std::env::var("CPMA_THREADS").ok().as_deref()))
}

/// Parsing rule for `CPMA_THREADS` (split out for unit testing): positive
/// integers are honored, everything else is ignored.
pub(crate) fn parse_threads(v: Option<&str>) -> Option<usize> {
    v.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

const PENDING: u8 = 0;
const CLAIMED: u8 = 1;
const DONE: u8 = 2;

/// Type-erased handle to a queued job.
pub(crate) struct JobRef(Arc<dyn Runnable + Send + Sync + 'static>);

impl JobRef {
    fn run(self) {
        self.0.run();
    }
}

pub(crate) trait Runnable {
    /// Claim and execute the job if still pending; no-op if the forker
    /// reclaimed it.
    fn run(&self);
}

/// Completion probe used by the helping wait loop.
trait Probe: Sync {
    fn is_done(&self) -> bool;
    /// Park until notified done, or for [`JOIN_PARK`], whichever is first.
    fn park_brief(&self);
}

/// A forked closure with its result slot. The state machine is
/// `PENDING → CLAIMED → DONE`; whoever wins the `PENDING → CLAIMED` CAS
/// (a worker, a helping joiner, or the forker reclaiming) runs the
/// closure exactly once. Interior mutability is sound because `func` is
/// touched only by the CAS winner and `result` only after `DONE` is
/// observed with acquire ordering.
pub(crate) struct Task<F, R> {
    state: AtomicU8,
    func: std::cell::UnsafeCell<Option<F>>,
    result: std::cell::UnsafeCell<Option<std::thread::Result<R>>>,
    lock: Mutex<()>,
    done_cv: Condvar,
}

// SAFETY: cross-thread access to the UnsafeCells is serialized by the
// `state` machine documented above.
unsafe impl<F: Send, R: Send> Send for Task<F, R> {}
unsafe impl<F: Send, R: Send> Sync for Task<F, R> {}

impl<F, R> Task<F, R>
where
    F: FnOnce() -> R,
{
    fn new(f: F) -> Self {
        Self {
            state: AtomicU8::new(PENDING),
            func: std::cell::UnsafeCell::new(Some(f)),
            result: std::cell::UnsafeCell::new(None),
            lock: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    /// Try to move `PENDING → CLAIMED`; true iff this caller now owns the
    /// closure.
    fn claim(&self) -> bool {
        self.state
            .compare_exchange(PENDING, CLAIMED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Run the claimed closure inline and hand the result straight back
    /// (the forker's reclaim path — no need to go through the slot).
    fn run_reclaimed(&self) -> std::thread::Result<R> {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), CLAIMED);
        let f = unsafe {
            (*self.func.get())
                .take()
                .expect("claimed job has no closure")
        };
        let res = catch_unwind(AssertUnwindSafe(f));
        // Mark DONE so Drop-order invariants match the worker path.
        self.state.store(DONE, Ordering::Release);
        res
    }

    /// Drop the claimed closure without running it (the forker's other arm
    /// panicked — rayon likewise drops an unstolen job rather than running
    /// it, and this crate's sequential path never reaches it either).
    fn discard_unexecuted(&self) {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), CLAIMED);
        unsafe { (*self.func.get()).take() };
        self.state.store(DONE, Ordering::Release);
    }

    /// Take the result after `is_done()` returned true.
    fn take_result(&self) -> std::thread::Result<R> {
        debug_assert_eq!(self.state.load(Ordering::Acquire), DONE);
        unsafe { (*self.result.get()).take().expect("done job has no result") }
    }
}

impl<F, R> Runnable for Task<F, R>
where
    F: FnOnce() -> R,
{
    fn run(&self) {
        if !self.claim() {
            return; // the forker reclaimed it
        }
        let f = unsafe {
            (*self.func.get())
                .take()
                .expect("claimed job has no closure")
        };
        let res = catch_unwind(AssertUnwindSafe(f));
        unsafe { *self.result.get() = Some(res) };
        self.state.store(DONE, Ordering::Release);
        // Lock-then-notify pairs with the probe's check-under-lock, so a
        // waiter that just saw "not done" cannot miss this wakeup.
        let _g = self.lock.lock().unwrap();
        self.done_cv.notify_all();
    }
}

impl<F, R> Probe for Task<F, R>
where
    F: FnOnce() -> R,
    Task<F, R>: Sync,
{
    fn is_done(&self) -> bool {
        self.state.load(Ordering::Acquire) == DONE
    }

    fn park_brief(&self) {
        let g = self.lock.lock().unwrap();
        if self.state.load(Ordering::Acquire) != DONE {
            let _ = self.done_cv.wait_timeout(g, JOIN_PARK).unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

struct State {
    queue: VecDeque<JobRef>,
    workers: usize,
}

pub(crate) struct Pool {
    state: Mutex<State>,
    work_cv: Condvar,
}

/// Process-wide pool metrics, registered once in the global observability
/// registry. Counters are deterministic only in the trivial sense (spawn
/// counts depend on fork timing), so nothing here feeds `stats()` views.
struct PoolMetrics {
    /// Jobs popped and executed by detached workers.
    jobs: cpma_obs::Counter,
    /// Jobs executed by a blocked joiner in `help_until` (helping steals).
    helped: cpma_obs::Counter,
    /// Worker threads spawned over the process lifetime.
    workers_spawned: cpma_obs::Counter,
    /// Current worker-thread count (monotone under the lazy-spawn design).
    workers: cpma_obs::Gauge,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = cpma_obs::global();
        PoolMetrics {
            jobs: r.shared_counter("pool.jobs", cpma_obs::Unit::Count),
            helped: r.shared_counter("pool.helped", cpma_obs::Unit::Count),
            workers_spawned: r.shared_counter("pool.workers_spawned", cpma_obs::Unit::Count),
            workers: r.shared_gauge("pool.workers"),
        }
    })
}

fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            workers: 0,
        }),
        work_cv: Condvar::new(),
    })
}

impl Pool {
    /// Enqueue a job, growing the worker set up to `budget` first.
    fn push(&'static self, job: JobRef, budget: usize) {
        let mut st = self.state.lock().unwrap();
        let target = budget.min(MAX_WORKERS);
        while st.workers < target {
            let spawned = std::thread::Builder::new()
                .name(format!("cpma-pool-{}", st.workers))
                .spawn(move || self.worker_loop());
            if spawned.is_err() {
                break; // fewer workers; reclaim keeps us deadlock-free
            }
            st.workers += 1;
            let m = metrics();
            m.workers_spawned.inc();
            m.workers.set(st.workers as i64);
            cpma_obs::journal().push("pool.spawn", 0, st.workers as u64);
        }
        st.queue.push_back(job);
        drop(st);
        self.work_cv.notify_one();
    }

    fn try_pop(&self) -> Option<JobRef> {
        self.state.lock().unwrap().queue.pop_front()
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut st = self.state.lock().unwrap();
                loop {
                    if let Some(j) = st.queue.pop_front() {
                        break j;
                    }
                    st = self.work_cv.wait(st).unwrap();
                }
            };
            metrics().jobs.inc();
            job.run(); // panics are caught inside the task
        }
    }

    /// Wait for `probe` to finish, executing other queued jobs meanwhile
    /// (this is what lets nested joins run to completion instead of
    /// deadlocking a blocked worker).
    fn help_until(&self, probe: &dyn Probe) {
        loop {
            if probe.is_done() {
                return;
            }
            match self.try_pop() {
                Some(job) => {
                    metrics().helped.inc();
                    job.run();
                }
                None => probe.park_brief(),
            }
        }
    }
}

/// Erase the closure's borrow lifetime so the job can sit in the 'static
/// queue.
///
/// # Safety
/// The caller must not return (or unwind past its frame) until the task is
/// `DONE` or has been reclaimed and run inline — [`fork_join`] guarantees
/// both, so the borrowed data outlives every access to the closure. The
/// `Arc` clone that may linger in the queue afterwards only ever loses the
/// claim CAS and drops empty `Option`s.
unsafe fn erase<'a>(
    arc: Arc<dyn Runnable + Send + Sync + 'a>,
) -> Arc<dyn Runnable + Send + Sync + 'static> {
    std::mem::transmute(arc)
}

/// Fork `oper_b` onto the pool, run `oper_a` inline, and join — the
/// parallel arm of [`crate::join`] (the caller has already checked the
/// budget and reserved a spawn slot).
pub(crate) fn fork_join<A, B, RA, RB>(oper_a: A, oper_b: B, budget: usize) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = global();
    let task = Arc::new(Task::new(oper_b));
    {
        let job: Arc<dyn Runnable + Send + Sync + '_> = task.clone();
        // SAFETY: this frame outlives the task (we join below before
        // returning or unwinding).
        pool.push(JobRef(unsafe { erase(job) }), budget);
    }
    let ra = catch_unwind(AssertUnwindSafe(oper_a));
    let rb = if task.claim() {
        if ra.is_err() {
            // `oper_a` panicked and nobody stole `oper_b`: drop it
            // unexecuted (rayon's semantics, and what our own sequential
            // path does) and unwind immediately.
            task.discard_unexecuted();
            match ra {
                Err(p) => std::panic::resume_unwind(p),
                Ok(_) => unreachable!(),
            }
        }
        task.run_reclaimed()
    } else {
        // Stolen: the job may borrow this frame, so even a panicking
        // `oper_a` must wait here for it to finish before unwinding.
        pool.help_until(&*task);
        task.take_result()
    };
    match (ra, rb) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(p), _) => std::panic::resume_unwind(p),
        (_, Err(p)) => std::panic::resume_unwind(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_rules() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("junk")), None);
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
    }

    #[test]
    fn fork_join_basic_and_borrowing() {
        let data = [1u64, 2, 3];
        let (a, b) = fork_join(|| data.iter().sum::<u64>(), || data.len(), 2);
        assert_eq!((a, b), (6, 3));
    }

    #[test]
    fn reclaim_with_zero_budget_workers() {
        // Even if no worker ever picks the job up, the forker reclaims it.
        let (a, b) = fork_join(|| 1, || 2, 1);
        assert_eq!((a, b), (1, 2));
    }
}
