//! # cpma — batch-parallel (Compressed) Packed Memory Arrays in Rust
//!
//! Umbrella crate for the reproduction of *CPMA: An Efficient Batch-Parallel
//! Compressed Set Without Pointers* (Wheatman, Burns, Buluç, Xu — PPoPP
//! 2024).
//!
//! ## One interface, seven set structures
//!
//! The paper's evaluation runs six ordered-set structures through identical
//! workloads. This workspace expresses that as one canonical trait
//! hierarchy, defined in [`api`] (`cpma-api`) and implemented by every
//! structure plus `std::collections::BTreeSet` (the test oracle):
//!
//! * [`api::OrderedSet`] — point queries: `contains`, `len`, `min`/`max`,
//!   `successor`, `size_bytes`;
//! * [`api::BatchSet`] — `build_sorted`, `insert_batch_sorted`,
//!   `remove_batch_sorted`, plus unsorted `insert_batch`/`remove_batch`
//!   wrappers routed through [`api::normalize_batch`];
//! * [`api::RangeSet`] — std-idiom range queries over
//!   [`std::ops::RangeBounds`]: `range_sum(a..b)`, `for_range(a..=b, f)`,
//!   `range_iter`, built on one `scan_from` primitive.
//!
//! Import the lot with the [`prelude`]:
//!
//! ```
//! use cpma::prelude::*;
//!
//! let mut set = Cpma::new();
//! set.insert_batch(&mut [5, 1, 3, 1], false);
//! assert_eq!(set.len(), 3);
//! assert!(set.contains(3));
//! assert_eq!(set.range_sum(1..=5), 9);
//! assert_eq!(set.range_iter(2..).collect::<Vec<_>>(), vec![3, 5]);
//! ```
//!
//! The same program runs against any structure in the workspace — swap
//! `Cpma::new()` for `PTree::new()`, `UPac::new()`, or `BTreeSet::new()`
//! and nothing else changes. That property is enforced, not aspirational:
//! [`api::conformance::assert_ordered_set_contract`] runs the shared
//! randomized contract against all seven implementations in CI.
//!
//! ## The crates under the roof
//!
//! * [`api`] — the trait hierarchy, `normalize_batch`, `ConfigError`, the
//!   conformance suite, and the deterministic test kit;
//! * [`pma`] — the paper's contribution: [`pma::Pma`] (uncompressed) and
//!   [`pma::Cpma`] (delta + byte-code compressed), both with the
//!   work-efficient parallel batch-update algorithm of §4, configured via
//!   the fallible [`pma::PmaConfig::builder`];
//! * [`baselines`] — reimplementations of the systems the paper compares
//!   against: P-trees (PAM), PaC-trees (U-PaC / C-PaC), Aspen-style
//!   C-trees;
//! * [`fgraph`] — F-Graph (dynamic graphs on a single CPMA) as an instance
//!   of the backend-generic [`fgraph::SetGraph`], the baseline graph
//!   containers, a CSR reference, and a Ligra-style algorithm layer;
//! * [`store`] — the concurrent front-end: [`store::ShardedSet`]
//!   (range-partitioned shards, batches split at learned splitters and
//!   applied shard-parallel, shard count autotuned from its
//!   [`store::RebalanceStats`]) and [`store::Combiner`] (flat-combining
//!   writer aggregation with swap-published snapshots and fixed or
//!   adaptive combining windows, [`store::WindowPolicy`]), which together
//!   turn live multi-threaded traffic into the batch-parallel updates the
//!   paper's structures are built for — `docs/ARCHITECTURE.md` maps the
//!   whole stack and `docs/TUNING.md` explains every knob;
//! * [`persist`] — the durability layer: checksummed zero-copy snapshots
//!   ([`api::Persist`] `save`/`load` on `Pma`, `Cpma`, and
//!   `ShardedSet`), the epoch write-ahead log behind
//!   [`store::Combiner::open_durable`], and crash recovery
//!   ([`fn@persist::recover`]: newest valid checkpoint + WAL tail
//!   replay);
//! * [`service`] — the network front door: a std-only blocking TCP server
//!   ([`service::Service`]) speaking a length-prefixed checksummed binary
//!   protocol, funneling per-connection op pipelines through
//!   [`store::Combiner::submit_many`] (optionally WAL-backed via
//!   [`service::Service::serve_durable`]) and serving reads from published
//!   snapshots, plus the blocking loopback [`service::Client`];
//! * [`workloads`] — deterministic generators for every input distribution
//!   in the paper's evaluation;
//! * [`obs`] — the observability layer every crate above reports into: a
//!   process-global [`obs::Registry`] of counters/gauges/latency
//!   histograms, RAII phase spans feeding a bounded event journal, and
//!   Prometheus-text / JSON exposition — `docs/OBSERVABILITY.md` catalogs
//!   every metric.

pub use cpma_api as api;
pub use cpma_baselines as baselines;
pub use cpma_fgraph as fgraph;
pub use cpma_obs as obs;
pub use cpma_persist as persist;
pub use cpma_pma as pma;
pub use cpma_service as service;
pub use cpma_store as store;
pub use cpma_workloads as workloads;

/// Everything needed to use any of the workspace's set structures through
/// the canonical interface: the trait hierarchy, the key trait, the batch
/// normal-form helper, and the concrete structure types.
pub mod prelude {
    pub use crate::api::{
        normalize_batch, normalize_ops, BatchOp, BatchOutcome, BatchSet, ConfigError, OrderedSet,
        ParallelChunks, RangeSet, SetKey,
    };
    pub use crate::api::{Persist, PersistError};
    pub use crate::baselines::{CPac, CTreeSet, PTree, UPac};
    pub use crate::persist::{FsyncPolicy, RecoveryReport, WalConfig};
    pub use crate::pma::{Cpma, Pma, PmaConfig};
    pub use crate::service::{Client, Service, ServiceConfig};
    pub use crate::store::{
        AdaptiveWindow, Combiner, CombinerConfig, CombinerStats, RebalanceStats, ShardTuning,
        ShardedSet, WindowPolicy,
    };
}
