//! # cpma — batch-parallel (Compressed) Packed Memory Arrays in Rust
//!
//! Umbrella crate for the reproduction of *CPMA: An Efficient Batch-Parallel
//! Compressed Set Without Pointers* (Wheatman, Burns, Buluç, Xu — PPoPP
//! 2024). Re-exports the workspace crates under one roof:
//!
//! * [`pma`] — the paper's contribution: [`pma::Pma`] (uncompressed) and
//!   [`pma::Cpma`] (delta + byte-code compressed), both with the
//!   work-efficient parallel batch-update algorithm of §4;
//! * [`baselines`] — reimplementations of the systems the paper compares
//!   against: P-trees (PAM), PaC-trees (U-PaC / C-PaC), Aspen-style C-trees;
//! * [`fgraph`] — F-Graph (dynamic graphs on a single CPMA), the baseline
//!   graph containers, a CSR reference, and a Ligra-style algorithm layer;
//! * [`workloads`] — deterministic generators for every input distribution
//!   in the paper's evaluation.
//!
//! ```
//! use cpma::pma::Cpma;
//!
//! let mut set = Cpma::new();
//! set.insert_batch(&mut [5, 1, 3, 1], false);
//! assert_eq!(set.len(), 3);
//! assert!(set.has(3));
//! assert_eq!(set.sum(), 9);
//! ```

pub use cpma_baselines as baselines;
pub use cpma_fgraph as fgraph;
pub use cpma_pma as pma;
pub use cpma_workloads as workloads;
