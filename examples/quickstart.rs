//! Quickstart: the CPMA as a drop-in dynamic ordered set.
//!
//! Mirrors the paper artifact's API walk-through (`size`, `insert`,
//! `insert_batch`, `has`, `map_range`, `sum`, iteration).
//!
//! Run with: `cargo run --release --example quickstart`

use cpma::pma::Cpma;

fn main() {
    // Build empty, insert points.
    let mut set = Cpma::new();
    for k in [42u64, 7, 999, 7] {
        set.insert(k); // duplicate 7 is ignored: it's a set
    }
    assert_eq!(set.len(), 3);
    println!("after point inserts: len = {}", set.len());

    // Batch insert (unsorted input is fine; returns how many were new).
    let mut batch: Vec<u64> = (0..100_000u64).map(|i| i * 3 + 1).collect();
    let added = set.insert_batch(&mut batch, false);
    println!("batch insert added {added} keys; len = {}", set.len());

    // Point queries.
    assert!(set.has(42));
    assert!(set.has(4));
    assert_eq!(set.successor(5), Some(7));

    // Ordered scans: range map, bounded map, sums.
    let mut first_five = Vec::new();
    set.map_range_length(0, 5, |k| first_five.push(k));
    println!("first five keys: {first_five:?}");
    let in_range = {
        let mut c = 0u64;
        set.map_range(1_000, 2_000, |_| c += 1);
        c
    };
    println!("keys in [1000, 2000): {in_range}");
    println!("sum of all keys: {}", set.sum());

    // Batch delete.
    let mut evens: Vec<u64> = (0..100_000u64).map(|i| i * 6 + 4).collect();
    let removed = set.remove_batch(&mut evens, false);
    println!("batch delete removed {removed} keys; len = {}", set.len());

    // Memory accounting (the artifact's get_size()).
    println!(
        "memory: {} bytes total, {:.2} bytes/element",
        set.size_bytes(),
        set.size_bytes() as f64 / set.len() as f64
    );

    // Iterate in order (first 3).
    let head: Vec<u64> = set.iter().take(3).collect();
    println!("smallest three: {head:?}");
}
