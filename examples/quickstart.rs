//! Quickstart: the CPMA as a drop-in dynamic ordered set.
//!
//! Mirrors the paper artifact's API walk-through through the canonical
//! `cpma::api` traits: build, batch updates, point queries, std-idiom
//! range queries, iteration, and the fallible config builder.
//!
//! Run with: `cargo run --release --example quickstart`

use cpma::pma::PmaConfig;
use cpma::prelude::*;

fn main() {
    // Build empty, insert points.
    let mut set = Cpma::new();
    for k in [42u64, 7, 999, 7] {
        set.insert(k); // duplicate 7 is ignored: it's a set
    }
    assert_eq!(set.len(), 3);
    println!("after point inserts: len = {}", set.len());

    // Batch insert (unsorted input is fine; returns how many were new).
    let mut batch: Vec<u64> = (0..100_000u64).map(|i| i * 3 + 1).collect();
    let added = set.insert_batch(&mut batch, false);
    println!("batch insert added {added} keys; len = {}", set.len());

    // Point queries (OrderedSet).
    assert!(set.contains(42));
    assert!(set.contains(4));
    assert_eq!(set.successor(5), Some(7));
    assert_eq!(set.min(), Some(1));

    // Ordered scans with std range syntax (RangeSet).
    let first_five: Vec<u64> = set.range_iter(..).take(5).collect();
    println!("first five keys: {first_five:?}");
    let in_range = {
        let mut c = 0u64;
        set.for_range(1_000..2_000, |_| c += 1);
        c
    };
    println!("keys in 1000..2000: {in_range}");
    println!(
        "sum of keys in 1000..=2000: {}",
        set.range_sum(1_000..=2_000)
    );
    println!("sum of all keys: {}", set.range_sum(..));

    // Batch delete.
    let mut evens: Vec<u64> = (0..100_000u64).map(|i| i * 6 + 4).collect();
    let removed = set.remove_batch(&mut evens, false);
    println!("batch delete removed {removed} keys; len = {}", set.len());

    // Memory accounting (the artifact's get_size()).
    println!(
        "memory: {} bytes total, {:.2} bytes/element",
        set.size_bytes(),
        set.size_bytes() as f64 / set.len() as f64
    );

    // Iterate in order (first 3), zero-copy.
    let head: Vec<u64> = set.iter().take(3).collect();
    println!("smallest three: {head:?}");

    // Custom configuration via the fallible builder.
    let cfg = PmaConfig::builder()
        .growing_factor(1.5)
        .build()
        .expect("valid config");
    let tuned: Cpma = Cpma::with_config(cfg);
    assert!(tuned.is_empty());
    assert!(PmaConfig::builder().growing_factor(0.5).build().is_err());
    println!("builder rejects growing_factor 0.5, accepts 1.5 — config errors are values now");
}
