//! Dynamic-graph processing with F-Graph (§6 of the paper): stream edge
//! batches into a single-CPMA graph while periodically running analytics,
//! using the paper's phased update/compute model.
//!
//! Run with: `cargo run --release --example dynamic_graph`

use cpma::fgraph::algos::{bc, cc, pagerank};
use cpma::fgraph::{FGraph, SetGraph};
use cpma::pma::Pma;
use cpma::workloads::RmatGenerator;
use std::time::Instant;

fn main() {
    let scale = 14u32; // 16k vertices
    let n = 1usize << scale;
    let gen = RmatGenerator::paper_config(scale, 7);

    // Start from a seed graph, then stream batches of new edges.
    let base = gen.undirected_graph(n * 4);
    let mut g = FGraph::from_edges(n, &base);
    println!(
        "seed graph: {} vertices, {} directed edges, {:.2} MB",
        g.num_vertices(),
        g.num_edges(),
        g.size_bytes() as f64 / (1024.0 * 1024.0)
    );

    for round in 0..5u64 {
        // Update phase: a batch of 100k directed edge insertions
        // (duplicates allowed, as in the paper's RMAT update streams).
        // One generator per round: edge draws are a pure function of the
        // seed, so distinct rounds need distinct seeds.
        let stream_gen = RmatGenerator::paper_config(scale, 1234 + round);
        let mut batch = stream_gen.directed_edges(100_000);
        let t = Instant::now();
        let added = g.insert_edges(&mut batch, false);
        let ingest = t.elapsed().as_secs_f64();

        // Compute phase: snapshot (rebuilds the vertex offsets — the
        // fixed cost the paper quantifies) and run the kernel suite.
        let t = Instant::now();
        let snap = g.snapshot();
        let snap_time = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let pr = pagerank(&snap, 10);
        let pr_time = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let labels = cc(&snap);
        let cc_time = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let deps = bc(&snap, 0);
        let bc_time = t.elapsed().as_secs_f64();

        let components = {
            let mut l = labels.clone();
            l.sort_unstable();
            l.dedup();
            l.len()
        };
        let top = pr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let max_dep = deps.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "round {round}: +{added} edges ({:.0} e/s) | snapshot {:.1} ms | PR {:.1} ms (top v{} = {:.5}) | CC {:.1} ms ({components} comps) | BC {:.1} ms (max dep {max_dep:.1})",
            added as f64 / ingest,
            snap_time * 1e3,
            pr_time * 1e3,
            top.0,
            top.1,
            cc_time * 1e3,
            bc_time * 1e3,
        );
    }
    println!(
        "final graph: {} edges, {:.2} MB",
        g.num_edges(),
        g.size_bytes() as f64 / (1024.0 * 1024.0)
    );

    // The container is generic over any `cpma::api::RangeSet` backend —
    // the same graph on an uncompressed PMA shows what the CPMA's delta
    // compression buys (F-Graph's headline in §6).
    let uncompressed: SetGraph<Pma<u64>> = SetGraph::from_edges(n, &base);
    println!(
        "backend swap: CPMA {:.2} MB vs uncompressed PMA {:.2} MB for the seed graph",
        FGraph::from_edges(n, &base).size_bytes() as f64 / (1024.0 * 1024.0),
        uncompressed.size_bytes() as f64 / (1024.0 * 1024.0),
    );
}
