//! Side-by-side analytics workload across the paper's set implementations:
//! the same ingest-and-scan loop on the CPMA, the uncompressed PMA,
//! P-trees, compressed PaC-trees, C-trees, and the std `BTreeSet`,
//! reporting throughput and footprint.
//!
//! A miniature of the paper's headline claim: the CPMA matches tree space,
//! beats trees on scans *and* batch ingest. The whole driver is one
//! generic function over `cpma::api`'s `BatchSet + RangeSet` — adding a
//! structure to the comparison is a single line in `main`.
//!
//! Run with: `cargo run --release --example analytics`

use cpma::prelude::*;
use cpma::workloads::{uniform_keys, ZipfGenerator};
use std::time::Instant;

fn drive<S: BatchSet<u64> + RangeSet<u64>>(batches: &[Vec<u64>], windows: &[(u64, u64)]) {
    let mut store = S::new_set();
    let t = Instant::now();
    let mut added = 0;
    let mut scratch = Vec::new();
    for b in batches {
        scratch.clear();
        scratch.extend_from_slice(b);
        let uniq = normalize_batch(&mut scratch);
        added += store.insert_batch_sorted(uniq);
    }
    let ingest = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut checksum = 0u64;
    for &(lo, hi) in windows {
        checksum = checksum.wrapping_add(store.range_sum(lo..hi));
    }
    let scan = t.elapsed().as_secs_f64();

    println!(
        "{:>8}: ingest {:>9.0} keys/s | {} window scans in {:>6.1} ms | {:>6.2} B/key | checksum {:#x}",
        S::NAME,
        added as f64 / ingest,
        windows.len(),
        scan * 1e3,
        store.size_bytes() as f64 / added.max(1) as f64,
        checksum
    );
}

fn main() {
    // A mixed feed: mostly uniform keys with a zipfian hot set.
    let total = 1_000_000usize;
    let mut zipf = ZipfGenerator::paper_config(99);
    let batches: Vec<Vec<u64>> = (0..50)
        .map(|i| {
            let mut b = uniform_keys(total / 100, 40, 1000 + i);
            b.extend(zipf.keys(total / 100));
            b
        })
        .collect();
    // 200 fixed analytics windows of ~0.5% of the key space each.
    let windows: Vec<(u64, u64)> = (0..200u64)
        .map(|i| {
            let lo = (i * 5 + 1) << 31;
            (lo, lo + (1u64 << 33))
        })
        .collect();

    println!(
        "ingesting {} batches of {} keys, then scanning...",
        batches.len(),
        total / 50
    );
    drive::<Cpma>(&batches, &windows);
    drive::<Pma<u64>>(&batches, &windows);
    drive::<PTree>(&batches, &windows);
    drive::<CPac>(&batches, &windows);
    drive::<CTreeSet>(&batches, &windows);
    drive::<std::collections::BTreeSet<u64>>(&batches, &windows);
}
