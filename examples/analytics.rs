//! Side-by-side analytics workload across the paper's set implementations:
//! the same ingest-and-scan loop on the CPMA, the uncompressed PMA,
//! P-trees, and compressed PaC-trees, reporting throughput and footprint.
//!
//! A miniature of the paper's headline claim: the CPMA matches tree space,
//! beats trees on scans *and* batch ingest.
//!
//! Run with: `cargo run --release --example analytics`

use cpma::baselines::{CPac, PTree};
use cpma::pma::{Cpma, Pma};
use cpma::workloads::{uniform_keys, ZipfGenerator};
use std::time::Instant;

trait Store {
    fn name(&self) -> &'static str;
    fn ingest(&mut self, batch: &[u64]) -> usize;
    fn scan_sum(&self, lo: u64, hi: u64) -> u64;
    fn bytes(&self) -> usize;
}

macro_rules! impl_store {
    ($ty:ty, $name:literal, $ins:ident, $sum:ident, $size:ident) => {
        impl Store for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn ingest(&mut self, batch: &[u64]) -> usize {
                let mut b = batch.to_vec();
                b.sort_unstable();
                b.dedup();
                self.$ins(&b)
            }
            fn scan_sum(&self, lo: u64, hi: u64) -> u64 {
                self.$sum(lo, hi)
            }
            fn bytes(&self) -> usize {
                self.$size()
            }
        }
    };
}

impl_store!(Cpma, "CPMA", insert_batch_sorted, range_sum, size_bytes);
impl_store!(Pma<u64>, "PMA", insert_batch_sorted, range_sum, size_bytes);
impl_store!(PTree, "P-tree", insert_batch_sorted, range_sum, size_bytes);
impl_store!(CPac, "C-PaC", insert_batch_sorted, range_sum, size_bytes);

fn drive(store: &mut dyn Store, batches: &[Vec<u64>], windows: &[(u64, u64)]) {
    let t = Instant::now();
    let mut added = 0;
    for b in batches {
        added += store.ingest(b);
    }
    let ingest = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut checksum = 0u64;
    for &(lo, hi) in windows {
        checksum = checksum.wrapping_add(store.scan_sum(lo, hi));
    }
    let scan = t.elapsed().as_secs_f64();

    println!(
        "{:>7}: ingest {:>9.0} keys/s | {} window scans in {:>6.1} ms | {:>6.2} B/key | checksum {:#x}",
        store.name(),
        added as f64 / ingest,
        windows.len(),
        scan * 1e3,
        store.bytes() as f64 / added.max(1) as f64,
        checksum
    );
}

fn main() {
    // A mixed feed: mostly uniform keys with a zipfian hot set.
    let total = 1_000_000usize;
    let mut zipf = ZipfGenerator::paper_config(99);
    let batches: Vec<Vec<u64>> = (0..50)
        .map(|i| {
            let mut b = uniform_keys(total / 100, 40, 1000 + i);
            b.extend(zipf.keys(total / 100));
            b
        })
        .collect();
    // 200 fixed analytics windows of ~0.5% of the key space each.
    let windows: Vec<(u64, u64)> = (0..200u64)
        .map(|i| {
            let lo = (i * 5 + 1) << 31;
            (lo, lo + (1u64 << 33))
        })
        .collect();

    println!("ingesting {} batches of {} keys, then scanning...", batches.len(), total / 50);
    drive(&mut Cpma::new(), &batches, &windows);
    drive(&mut Pma::<u64>::new(), &batches, &windows);
    drive(&mut PTree::new(), &batches, &windows);
    drive(&mut CPac::new(), &batches, &windows);
}
