//! A concurrent batch-ingesting ordered key store — the workload class
//! the paper's introduction motivates ("applications with a large number
//! of requests in a short time, such as stream processing"), served by
//! `cpma-store`.
//!
//! Several ingest threads stream bursts of event IDs into one
//! `Combiner<ShardedSet<Cpma>>`: the flat-combining leader folds
//! concurrent bursts into one batch-parallel CPMA update per epoch, and
//! an analytics thread runs range scans against swap-published snapshots
//! without ever blocking the writers. A periodic expiry pass batch-removes
//! old events through the same front-end.
//!
//! Run with: `cargo run --release --example key_store`

use cpma::prelude::*;
use cpma::workloads::SplitMix64;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Compose an event key: a coarse timestamp in the high bits, a sequence
/// number in the low bits — keys arrive roughly ordered, the CPMA's best
/// case.
fn event_key(second: u64, seq: u64) -> u64 {
    (second << 20) | (seq & 0xFFFFF)
}

const INGEST_THREADS: u64 = 4;
const SECONDS: u64 = 120;
const EVENTS_PER_THREAD_SECOND: usize = 2_500;

fn main() {
    // Self-tuning store: the adaptive window seals each combining epoch
    // when the burst wave ends (no arrival-rate knob to guess), the
    // shard count autotunes between 1 and 64 as the store fills, and
    // snapshots publish every epoch so every acknowledged burst is
    // immediately visible to the analytics reader.
    let store: Combiner<ShardedSet<Cpma, 8, 1, 64>> =
        Combiner::with_config(BatchSet::new_set(), CombinerConfig::adaptive());
    let ingested = AtomicUsize::new(0);
    let finished_writers = AtomicUsize::new(0);
    let done = AtomicBool::new(false);

    let start = Instant::now();
    std::thread::scope(|scope| {
        // --- ingest: each thread streams one burst per simulated second.
        for t in 0..INGEST_THREADS {
            let store = &store;
            let ingested = &ingested;
            let finished_writers = &finished_writers;
            scope.spawn(move || {
                let mut rng = SplitMix64::new(2024 + t);
                for second in 0..SECONDS {
                    let burst: Vec<u64> = (0..EVENTS_PER_THREAD_SECOND)
                        .map(|_| event_key(second, rng.next_below(1 << 20)))
                        .collect();
                    ingested.fetch_add(store.insert_many(&burst), Ordering::Relaxed);
                }
                finished_writers.fetch_add(1, Ordering::Release);
            });
        }

        // --- expiry: batch-remove events older than 40 "seconds", read
        // from a snapshot, removed through the combiner like any writer.
        scope.spawn(|| {
            let mut expired_total = 0usize;
            while !done.load(Ordering::Acquire) {
                let snap = store.snapshot();
                if let Some(newest) = snap.max() {
                    let horizon = (newest >> 20).saturating_sub(40);
                    let victims: Vec<u64> = snap.range_iter(..event_key(horizon, 0)).collect();
                    let ops: Vec<_> = victims
                        .iter()
                        .map(|&k| cpma::store::Op::Remove(k))
                        .collect();
                    expired_total += store
                        .submit_many(&ops)
                        .into_iter()
                        .filter(|&removed| removed)
                        .count();
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            println!("expiry: removed {expired_total} old events");
        });

        // --- analytics: trailing-window scans on snapshots; never blocks
        // the ingest path.
        let reports = scope.spawn(|| {
            let mut reports = 0u32;
            while !done.load(Ordering::Acquire) {
                let snap = store.snapshot();
                if let Some(newest) = snap.max() {
                    let second = newest >> 20;
                    let window = event_key(second.saturating_sub(10), 0)..event_key(second + 1, 0);
                    let count = snap.range_iter(window.clone()).count();
                    let checksum = snap.range_sum(window);
                    if reports.is_multiple_of(16) {
                        println!(
                            "t≈{second:>3}s  trailing-10s events: {count:>6}  checksum: {checksum:#018x}"
                        );
                    }
                    reports += 1;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            reports
        });

        // The reader loops run until every ingest thread has finished
        // (joining the scope directly would deadlock their `while !done`
        // loops, so signal them instead).
        while finished_writers.load(Ordering::Acquire) < INGEST_THREADS as usize {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        done.store(true, Ordering::Release);
        let reports = reports.join().unwrap();
        println!("analytics: {reports} snapshot reports while ingesting");
    });
    let elapsed = start.elapsed().as_secs_f64();

    let total = ingested.load(Ordering::Relaxed);
    let epochs = store.epochs_applied();
    println!("combiner: {}", store.stats().summary());
    let set = store.into_inner();
    println!("shards:   {}", set.rebalance_stats().summary());
    println!(
        "\ningested {total} unique events in {elapsed:.2}s ({:.0} acked inserts/s)",
        total as f64 / elapsed
    );
    println!(
        "combined into {epochs} epochs (~{:.0} ops per batch-parallel update)",
        (INGEST_THREADS as usize * SECONDS as usize * EVENTS_PER_THREAD_SECOND) as f64
            / epochs.max(1) as f64
    );
    println!(
        "final store: {} events, {:.2} B/event (CPMA-compressed, {} shards)",
        set.len(),
        set.size_bytes() as f64 / set.len().max(1) as f64,
        set.shard_count()
    );
}
