//! A batch-ingesting ordered key store — the workload class the paper's
//! introduction motivates ("applications with a large number of requests
//! in a short time, such as stream processing").
//!
//! Simulates an event-ID store: timestamps arrive in bursts (batches),
//! recent windows are range-scanned for analytics, and old events are
//! batch-expired — all through the canonical `cpma::api` traits, with
//! std-range syntax for the window scans. Contrasts the CPMA against the
//! uncompressed PMA on footprint.
//!
//! Run with: `cargo run --release --example key_store`

use cpma::prelude::*;
use cpma::workloads::SplitMix64;
use std::time::Instant;

/// Compose an event key: seconds in the high bits, a sequence number in
/// the low bits — keys arrive roughly ordered, the CPMA's best case.
fn event_key(second: u64, seq: u64) -> u64 {
    (second << 20) | (seq & 0xFFFFF)
}

fn main() {
    let mut store = Cpma::new();
    let mut shadow = Pma::<u64>::new(); // uncompressed comparison
    let mut rng = SplitMix64::new(2024);

    let start = Instant::now();
    let mut total_ingested = 0usize;
    for second in 0..300u64 {
        // A burst of 10k events this second, slightly out of order.
        let mut burst: Vec<u64> = (0..10_000)
            .map(|_| event_key(second, rng.next_below(1 << 20)))
            .collect();
        total_ingested += store.insert_batch(&mut burst.clone(), false);
        shadow.insert_batch(&mut burst, false);

        // Every 50 seconds: range analytics over the trailing 10-second
        // window, then expire everything older than 100 seconds.
        if second % 50 == 49 {
            let window = event_key(second.saturating_sub(10), 0)..event_key(second + 1, 0);
            let mut window_count = 0u64;
            store.for_range(window.clone(), |_| window_count += 1);
            let window_sum = store.range_sum(window);
            println!(
                "t={second:>3}s  window events: {window_count:>6}  checksum: {window_sum:#018x}"
            );

            if second > 100 {
                let expire_before = event_key(second - 100, 0);
                let victims: Vec<u64> = store.range_iter(..expire_before).collect();
                let dropped = store.remove_batch_sorted(&victims);
                shadow.remove_batch_sorted(&victims);
                println!("        expired {dropped} events below t={}s", second - 100);
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "\ningested {total_ingested} events in {elapsed:.2}s ({:.0} events/s)",
        total_ingested as f64 / elapsed
    );
    println!(
        "footprint: CPMA {:.2} B/event vs uncompressed PMA {:.2} B/event ({:.1}x smaller)",
        store.size_bytes() as f64 / store.len() as f64,
        shadow.size_bytes() as f64 / shadow.len() as f64,
        shadow.size_bytes() as f64 / store.size_bytes() as f64
    );
    assert_eq!(store.len(), shadow.len(), "stores must agree");
}
