//! A concurrent batch-ingesting ordered key store — the workload class
//! the paper's introduction motivates ("applications with a large number
//! of requests in a short time, such as stream processing"), served by
//! `cpma-store`.
//!
//! Several ingest threads stream bursts of event IDs into one
//! `Combiner<ShardedSet<Cpma>>`: the flat-combining leader folds
//! concurrent bursts into one batch-parallel CPMA update per epoch, and
//! an analytics thread runs range scans against swap-published snapshots
//! without ever blocking the writers. A periodic expiry pass batch-removes
//! old events through the same front-end.
//!
//! A final durability phase checkpoints the ingested store, streams more
//! bursts through a WAL-backed combiner, "crashes" (drops the store with
//! the WAL tail unapplied to any checkpoint), and recovers — verifying
//! the recovered epoch count and contents against the pre-crash state.
//!
//! Run with: `cargo run --release --example key_store`

use cpma::prelude::*;
use cpma::workloads::SplitMix64;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Compose an event key: a coarse timestamp in the high bits, a sequence
/// number in the low bits — keys arrive roughly ordered, the CPMA's best
/// case.
fn event_key(second: u64, seq: u64) -> u64 {
    (second << 20) | (seq & 0xFFFFF)
}

const INGEST_THREADS: u64 = 4;
const SECONDS: u64 = 120;
const EVENTS_PER_THREAD_SECOND: usize = 2_500;

fn main() {
    // Dump the span journal to stderr if anything below panics — the last
    // ~1024 phase spans are usually enough to see what the store was doing.
    cpma::obs::install_panic_hook();

    // Self-tuning store: the adaptive window seals each combining epoch
    // when the burst wave ends (no arrival-rate knob to guess), the
    // shard count autotunes between 1 and 64 as the store fills, and
    // snapshots publish every epoch so every acknowledged burst is
    // immediately visible to the analytics reader.
    let store: Combiner<ShardedSet<Cpma, 8, 1, 64>> =
        Combiner::with_config(BatchSet::new_set(), CombinerConfig::adaptive());
    let ingested = AtomicUsize::new(0);
    let finished_writers = AtomicUsize::new(0);
    let done = AtomicBool::new(false);

    let start = Instant::now();
    // Pin the batch-update fan-out to 4 workers: demo runs are then
    // shaped the same on any machine (including single-core CI, where the
    // default budget would be 1 and the pool would never spawn).
    cpma_bench::with_threads(4, || {
        std::thread::scope(|scope| {
            // --- ingest: each thread streams one burst per simulated second.
            for t in 0..INGEST_THREADS {
                let store = &store;
                let ingested = &ingested;
                let finished_writers = &finished_writers;
                scope.spawn(move || {
                    let mut rng = SplitMix64::new(2024 + t);
                    for second in 0..SECONDS {
                        let burst: Vec<u64> = (0..EVENTS_PER_THREAD_SECOND)
                            .map(|_| event_key(second, rng.next_below(1 << 20)))
                            .collect();
                        ingested.fetch_add(store.insert_many(&burst), Ordering::Relaxed);
                    }
                    finished_writers.fetch_add(1, Ordering::Release);
                });
            }

            // --- expiry: batch-remove events older than 40 "seconds", read
            // from a snapshot, removed through the combiner like any writer.
            scope.spawn(|| {
                let mut expired_total = 0usize;
                while !done.load(Ordering::Acquire) {
                    let snap = store.snapshot();
                    if let Some(newest) = snap.max() {
                        let horizon = (newest >> 20).saturating_sub(40);
                        let victims: Vec<u64> = snap.range_iter(..event_key(horizon, 0)).collect();
                        let ops: Vec<_> = victims
                            .iter()
                            .map(|&k| cpma::store::Op::Remove(k))
                            .collect();
                        expired_total += store
                            .submit_many(&ops)
                            .into_iter()
                            .filter(|&removed| removed)
                            .count();
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                println!("expiry: removed {expired_total} old events");
            });

            // --- analytics: trailing-window scans on snapshots; never blocks
            // the ingest path.
            let reports = scope.spawn(|| {
            let mut reports = 0u32;
            while !done.load(Ordering::Acquire) {
                let snap = store.snapshot();
                if let Some(newest) = snap.max() {
                    let second = newest >> 20;
                    let window = event_key(second.saturating_sub(10), 0)..event_key(second + 1, 0);
                    let count = snap.range_iter(window.clone()).count();
                    let checksum = snap.range_sum(window);
                    if reports.is_multiple_of(16) {
                        println!(
                            "t≈{second:>3}s  trailing-10s events: {count:>6}  checksum: {checksum:#018x}"
                        );
                    }
                    reports += 1;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            reports
        });

            // The reader loops run until every ingest thread has finished
            // (joining the scope directly would deadlock their `while !done`
            // loops, so signal them instead).
            while finished_writers.load(Ordering::Acquire) < INGEST_THREADS as usize {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            done.store(true, Ordering::Release);
            let reports = reports.join().unwrap();
            println!("analytics: {reports} snapshot reports while ingesting");
        });
    });
    let elapsed = start.elapsed().as_secs_f64();

    let total = ingested.load(Ordering::Relaxed);
    let epochs = store.epochs_applied();
    println!("combiner: {}", store.stats().summary());
    let set = store.into_inner();
    println!("shards:   {}", set.rebalance_stats().summary());
    println!(
        "\ningested {total} unique events in {elapsed:.2}s ({:.0} acked inserts/s)",
        total as f64 / elapsed
    );
    println!(
        "combined into {epochs} epochs (~{:.0} ops per batch-parallel update)",
        (INGEST_THREADS as usize * SECONDS as usize * EVENTS_PER_THREAD_SECOND) as f64
            / epochs.max(1) as f64
    );
    println!(
        "final store: {} events, {:.2} B/event (CPMA-compressed, {} shards)",
        set.len(),
        set.size_bytes() as f64 / set.len().max(1) as f64,
        set.shard_count()
    );

    // --- durability: checkpoint → simulated crash → recover -----------
    type Store = ShardedSet<Cpma, 8, 1, 64>;
    println!("\n-- durability: checkpoint -> crash -> recover --");
    let wal_dir = std::env::temp_dir().join(format!("key-store-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).unwrap();
    // The ingested store becomes the log's base checkpoint (epoch 0) —
    // a shard-per-file directory with a checksummed manifest.
    let base_len = set.len();
    set.save(&wal_dir.join(format!("checkpoint-{:020}", 0)))
        .expect("checkpoint the ingested store");
    let mut wal = WalConfig::new(&wal_dir);
    wal.fsync = FsyncPolicy::EveryN(8);
    let (durable, report) =
        Combiner::<Store>::open_durable(CombinerConfig::adaptive(), wal.clone())
            .expect("open durable store");
    assert_eq!(durable.snapshot().len(), base_len);
    println!(
        "opened durable store from checkpoint (epoch {}): {} events",
        report.checkpoint_seq, base_len
    );

    // Stream more bursts: each epoch's net batch hits the WAL before it
    // is applied. A mid-stream checkpoint rotates the log; everything
    // after it lives only in the WAL tail when we "crash".
    let mut rng = SplitMix64::new(0xD00D);
    let mut burst_at = |second: u64| -> Vec<u64> {
        (0..EVENTS_PER_THREAD_SECOND)
            .map(|_| event_key(second, rng.next_below(1 << 20)))
            .collect()
    };
    for second in SECONDS..SECONDS + 20 {
        durable.insert_many(&burst_at(second));
    }
    let ckpt_epoch = durable.checkpoint().expect("mid-stream checkpoint");
    for second in SECONDS + 20..SECONDS + 40 {
        durable.insert_many(&burst_at(second));
    }
    let pre_crash_epochs = durable.epochs_applied();
    let pre_crash = durable.snapshot();
    let (pre_len, pre_sum) = (pre_crash.len(), pre_crash.range_sum(..));
    println!(
        "pre-crash: {pre_crash_epochs} epochs, {pre_len} events \
         (checkpoint at epoch {ckpt_epoch}, {} epochs only in the WAL tail)",
        pre_crash_epochs - ckpt_epoch
    );
    drop(pre_crash);
    drop(durable); // simulated crash: no shutdown checkpoint

    let (recovered, report) = Combiner::<Store>::open_durable(CombinerConfig::adaptive(), wal)
        .expect("recover after crash");
    println!(
        "recovered {} epochs: checkpoint at epoch {}, {} replayed from the WAL tail",
        report.last_seq, report.checkpoint_seq, report.replayed_records
    );
    assert_eq!(report.last_seq, pre_crash_epochs, "every acked epoch back");
    let snap = recovered.snapshot();
    assert_eq!(snap.len(), pre_len, "recovered contents match pre-crash");
    assert_eq!(snap.range_sum(..), pre_sum);
    println!(
        "recovered store matches pre-crash state: {} events, checksum {:#018x}",
        snap.len(),
        snap.range_sum(..)
    );
    drop(snap);
    drop(recovered);
    std::fs::remove_dir_all(&wal_dir).expect("clean up WAL dir");

    // --- observability: one snapshot, every layer ---------------------
    // Route the headline throughput through the bench harness too, so the
    // bench layer's own counter shows up in the registry dump below.
    let bench = cpma_bench::ubench::Bencher::new();
    bench.record(
        "key_store/acked_insert",
        &[("threads", INGEST_THREADS.to_string())],
        if total > 0 {
            elapsed / total as f64
        } else {
            0.0
        },
    );

    let snap = cpma::obs::global().snapshot();
    if let Some(h) = snap.histogram("combiner.epoch.ns") {
        println!(
            "\ncombiner epoch latency: p50 {:.1}µs  p99 {:.1}µs  p999 {:.1}µs  \
             (mean {:.1}µs over {} epochs)",
            h.quantile(0.5) as f64 / 1e3,
            h.quantile(0.99) as f64 / 1e3,
            h.quantile(0.999) as f64 / 1e3,
            h.mean() / 1e3,
            h.count,
        );
    }
    println!("\n-- registry snapshot (Prometheus text exposition) --");
    print!("{}", snap.to_prometheus());
    println!("\n-- event journal tail (most recent phase spans) --");
    print!("{}", cpma::obs::journal().render());
}
